/// Tiered KV memory (HBM hot tier + far-memory DRAM cold tier):
/// pool-level demote/promote/rollback semantics, the tiering-off
/// golden — far_memory at capacity 0 replays the single-tier scheduler
/// bit for bit regardless of the other far-memory knobs, cache on and
/// off — end-to-end migration accounting coherence (counters, energy,
/// promotion stalls) with the hit-rate gain tiering buys at an equal
/// HBM budget, and thread-count determinism with migration on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "accel/spatten_accelerator.hpp"
#include "serve/continuous_batch_scheduler.hpp"
#include "serve/kv_pool.hpp"

namespace spatten {
namespace {

/// Same tiny 4-layer model as the kv_pool suite: kvBytesPerToken =
/// 2*4*4*64*2 = 4096 B, so a 16-token block is 64 KiB.
ModelSpec
tinyModel()
{
    return {"tiny", 4, 4, 64, 4};
}

constexpr std::uint64_t kBlockBytes = 16ull * 4096;

std::vector<std::uint64_t>
prompt(std::uint64_t stream, std::size_t tokens)
{
    std::vector<std::uint64_t> p;
    p.reserve(tokens);
    for (std::size_t i = 0; i < tokens; ++i)
        p.push_back(stream * 0x100000001ULL + i);
    return p;
}

// ---------------------------------------------------------------------
// Pool level: migration semantics
// ---------------------------------------------------------------------

TEST(KvTierPool, ColdBlocksDemoteThenPromoteOnReReference)
{
    const ModelSpec m = tinyModel();
    KvPool pool({4 * kBlockBytes, 16, 2, 64, 4 * kBlockBytes});
    const auto a = prompt(40, 64); // 4 blocks.

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    pool.release(0);
    EXPECT_EQ(pool.coldBytes(), 4 * kBlockBytes);

    // A full-budget private reservation demotes every cold block to
    // DRAM instead of dropping it: the prefix index keeps all four.
    ASSERT_TRUE(pool.tryReserve(1, m, 64));
    EXPECT_EQ(pool.demotedBlocks(), 4u);
    EXPECT_EQ(pool.demotedBytes(), 4 * kBlockBytes);
    EXPECT_EQ(pool.evictedBlocks(), 0u);
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);
    EXPECT_EQ(pool.dramUsedBytes(), 4 * kBlockBytes);
    EXPECT_EQ(pool.dramPeakBytes(), 4 * kBlockBytes);
    EXPECT_EQ(pool.cachedBlocks(), 4u);
    EXPECT_EQ(pool.coldBytes(), 0u);
    pool.release(1);
    EXPECT_EQ(pool.usedBytes(), 0u);

    // A prefix re-reference promotes the whole chain back to HBM and
    // reports the migrated bytes for the scheduler to price.
    const auto r2 = pool.tryReservePrefix(2, m, a);
    ASSERT_TRUE(r2.ok);
    EXPECT_EQ(r2.cached_tokens, 64u);
    EXPECT_EQ(r2.shared_bytes, 4 * kBlockBytes);
    EXPECT_EQ(r2.promoted_bytes, 4 * kBlockBytes);
    EXPECT_EQ(pool.promotedBlocks(), 4u);
    EXPECT_EQ(pool.promotedBytes(), 4 * kBlockBytes);
    EXPECT_EQ(pool.dramUsedBytes(), 0u);
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);

    // Promoted blocks are ordinary hot blocks again: a second holder
    // maps them copy-free with no further migration.
    const auto r3 = pool.tryReservePrefix(3, m, a);
    ASSERT_TRUE(r3.ok);
    EXPECT_EQ(r3.cached_tokens, 64u);
    EXPECT_EQ(r3.promoted_bytes, 0u);
    pool.release(2);
    pool.release(3);
}

TEST(KvTierPool, PromotionGatedByHotBudgetRollsBackCleanly)
{
    const ModelSpec m = tinyModel();
    KvPool pool({4 * kBlockBytes, 16, 2, 64, 4 * kBlockBytes});
    const auto a = prompt(41, 64); // 4 blocks.

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    pool.release(0);
    ASSERT_TRUE(pool.tryReserve(1, m, 64)); // Demotes all 4 to DRAM.
    ASSERT_EQ(pool.dramUsedBytes(), 4 * kBlockBytes);

    // The hot tier is fully held: promoting the 4-block chain cannot
    // fit, so the admission must fail and restore the DRAM tier.
    const auto r2 = pool.tryReservePrefix(2, m, a);
    EXPECT_FALSE(r2.ok);
    EXPECT_EQ(pool.promotedBlocks(), 0u);
    EXPECT_EQ(pool.dramUsedBytes(), 4 * kBlockBytes)
        << "failed admission must leave the cold tier untouched";
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);

    // Once the holder leaves, the identical admission succeeds by
    // promotion — proving the rollback kept the blocks matchable.
    pool.release(1);
    const auto r3 = pool.tryReservePrefix(3, m, a);
    ASSERT_TRUE(r3.ok);
    EXPECT_EQ(r3.cached_tokens, 64u);
    EXPECT_EQ(r3.promoted_bytes, 4 * kBlockBytes);
    pool.release(3);
}

TEST(KvTierPool, BlockLargerThanDramBudgetFallsBackToEviction)
{
    const ModelSpec m = tinyModel();
    // A cold tier smaller than one block can never hold anything:
    // tiering is on, but every reclaim must be a true eviction.
    KvPool pool({2 * kBlockBytes, 16, 2, 64, kBlockBytes / 2});
    ASSERT_TRUE(pool.tryReservePrefix(0, m, prompt(42, 32)).ok);
    pool.release(0);
    ASSERT_TRUE(pool.tryReserve(1, m, 32));
    EXPECT_EQ(pool.demotedBlocks(), 0u);
    EXPECT_EQ(pool.evictedBlocks(), 2u);
    EXPECT_EQ(pool.dramUsedBytes(), 0u);
    EXPECT_EQ(pool.cachedBlocks(), 0u);
    pool.release(1);
}

// ---------------------------------------------------------------------
// Scheduler level
// ---------------------------------------------------------------------

ArrivalTraceConfig
tinyTraceConfig(std::size_t n = 16, std::uint64_t seed = 0x5eed)
{
    ArrivalTraceConfig tc;
    tc.num_requests = n;
    tc.mean_interarrival_s = 0.1e-3;
    tc.seed = seed;
    tc.model = tinyModel();
    tc.min_prompt = 48;
    tc.max_prompt = 160;
    tc.min_output = 2;
    tc.max_output = 8;
    return tc;
}

/// The demotion-pressure regime the bench sweeps: many distinct system
/// prompts re-referenced by follow-ups under a tight HBM budget, so
/// the flat pool must evict prefixes that tiering could have kept.
std::vector<TracedRequest>
churningSharedPrefixTrace(std::size_t n = 32)
{
    SharedPrefixTraceConfig sp;
    sp.base = tinyTraceConfig(n);
    sp.base.mean_interarrival_s = 0.05e-3;
    sp.num_system_prompts = 8;
    sp.system_prompt_tokens = 128;
    sp.followup_prob = 0.5;
    sp.user_turn_min = 8;
    sp.user_turn_max = 32;
    sp.max_prompt_tokens = 512;
    return generateSharedPrefixTrace(sp);
}

ContinuousBatchConfig
tightCachingConfig(const std::vector<TracedRequest>& trace)
{
    ContinuousBatchConfig sc;
    sc.max_active = 8;
    sc.enable_prefix_caching = true;
    sc.kv_capacity_bytes = kvBudgetForWorstRequest(trace, 1.25, sc);
    return sc;
}

ServeReport
serve(const std::vector<TracedRequest>& trace,
      const ContinuousBatchConfig& sc)
{
    return ContinuousBatchScheduler(SpAttenConfig{}, sc).run(trace);
}

/// Full-report bit-identity (the chunked-prefill suite's contract plus
/// the tier counters).
void
expectSameReport(const ServeReport& a, const ServeReport& b)
{
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.total_energy_j, b.total_energy_j);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.recompute_tokens, b.recompute_tokens);
    EXPECT_EQ(a.peak_concurrency, b.peak_concurrency);
    EXPECT_EQ(a.accel_busy_s, b.accel_busy_s);
    EXPECT_EQ(a.kv_peak_bytes, b.kv_peak_bytes);
    EXPECT_EQ(a.kv_dram_peak_bytes, b.kv_dram_peak_bytes);
    EXPECT_EQ(a.prefix_cache_hits, b.prefix_cache_hits);
    EXPECT_EQ(a.prefix_cached_tokens, b.prefix_cached_tokens);
    EXPECT_EQ(a.kv_evicted_blocks, b.kv_evicted_blocks);
    EXPECT_EQ(a.kv_demoted_blocks, b.kv_demoted_blocks);
    EXPECT_EQ(a.kv_promoted_blocks, b.kv_promoted_blocks);
    EXPECT_EQ(a.kv_migrated_bytes, b.kv_migrated_bytes);
    EXPECT_EQ(a.migration_energy_j, b.migration_energy_j);
    EXPECT_EQ(a.promotion_stall_s, b.promotion_stall_s);
    EXPECT_EQ(a.queue_delay_p50_s, b.queue_delay_p50_s);
    EXPECT_EQ(a.queue_delay_p99_s, b.queue_delay_p99_s);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].admit_s, b.requests[i].admit_s);
        EXPECT_EQ(a.requests[i].first_token_s,
                  b.requests[i].first_token_s);
        EXPECT_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
        EXPECT_EQ(a.requests[i].token_times_s,
                  b.requests[i].token_times_s);
        EXPECT_EQ(a.requests[i].service_seconds,
                  b.requests[i].service_seconds);
        EXPECT_EQ(a.requests[i].kv_trace, b.requests[i].kv_trace);
    }
}

TEST(TieredServe, TieringOffReplaysSingleTierSchedulerBitIdentically)
{
    // The golden of this PR: far_memory at capacity 0 must be
    // invisible — whatever the other far-memory knobs say — with the
    // cache off AND on, under the same memory pressure that exercises
    // eviction. Pinned against the default-config scheduler the PR-6
    // goldens cover, so a tiering-path leak into the legacy path
    // breaks this test before it breaks the golden suite.
    const auto trace = churningSharedPrefixTrace();
    for (const bool caching : {false, true}) {
        ContinuousBatchConfig sc = tightCachingConfig(trace);
        sc.enable_prefix_caching = caching;
        const ServeReport flat = serve(trace, sc);

        ContinuousBatchConfig tiered_off = sc;
        tiered_off.far_memory.capacity_gb = 0.0; // Off…
        tiered_off.far_memory.bandwidth_gbs = 0.125; // …and the other
        tiered_off.far_memory.latency_us = 9999.0;   // knobs inert.
        const ServeReport off = serve(trace, tiered_off);
        expectSameReport(flat, off);
        EXPECT_EQ(off.kv_dram_capacity_bytes, 0u);
        EXPECT_EQ(off.kv_demoted_blocks, 0u);
        EXPECT_EQ(off.kv_promoted_blocks, 0u);
        EXPECT_EQ(off.kv_migrated_bytes, 0u);
        EXPECT_EQ(off.migration_energy_j, 0.0);
        EXPECT_EQ(off.promotion_stall_s, 0.0);
    }
}

TEST(TieredServe, MigrationAccountingIsCoherentAndRaisesHitRate)
{
    const auto trace = churningSharedPrefixTrace();
    const ContinuousBatchConfig flat_sc = tightCachingConfig(trace);
    const ServeReport flat = serve(trace, flat_sc);
    ASSERT_GT(flat.kv_evicted_blocks, 0u)
        << "the fixture must churn the flat cache, or the comparison "
           "is vacuous";

    ContinuousBatchConfig sc = flat_sc;
    sc.far_memory.capacity_gb = 64.0 / 1024.0; // 64 MiB cold tier.
    const ServeReport tiered = serve(trace, sc);

    // Hybrid2's bargain at an equal HBM budget: prefixes survive in
    // DRAM, so more admissions hit — paid in migration traffic.
    EXPECT_GT(tiered.prefix_cached_tokens, flat.prefix_cached_tokens);
    EXPECT_GT(tiered.kv_demoted_blocks, 0u);
    EXPECT_GT(tiered.kv_promoted_blocks, 0u);
    EXPECT_EQ(tiered.kv_migrated_bytes,
              tiered.kv_demoted_bytes + tiered.kv_promoted_bytes);
    EXPECT_EQ(tiered.kv_dram_capacity_bytes, 64ull << 20);

    // Migrations cost energy (far_bit_energy_pj = 20 pJ/bit, inside
    // the total) and promotions cost admitting-request time.
    EXPECT_DOUBLE_EQ(tiered.migration_energy_j,
                     static_cast<double>(tiered.kv_migrated_bytes) *
                         8.0 * 20.0 * 1e-12);
    EXPECT_GT(tiered.migration_energy_j, 0.0);
    EXPECT_GT(tiered.promotion_stall_s, 0.0);

    // Every request still finishes, and the per-slot DRAM peak is
    // visible and bounded by the configured tier.
    for (const ServedRequest& req : tiered.requests)
        EXPECT_EQ(req.phase, RequestPhase::Finished);
    ASSERT_FALSE(tiered.kv_dram_peak_bytes.empty());
    std::uint64_t dram_peak = 0;
    for (const std::uint64_t p : tiered.kv_dram_peak_bytes)
        dram_peak = std::max(dram_peak, p);
    EXPECT_GT(dram_peak, 0u);
    EXPECT_LE(dram_peak, tiered.kv_dram_capacity_bytes);
}

TEST(TieredServe, PromotionLatencyFollowsTheFarMemoryKnobs)
{
    // Same trace, slower link: identical migration byte counts, but
    // every promotion burst costs more admitting-request time. The
    // knobs must actually reach the timeline, not just the report.
    const auto trace = churningSharedPrefixTrace();
    ContinuousBatchConfig sc = tightCachingConfig(trace);
    sc.far_memory.capacity_gb = 64.0 / 1024.0;
    const ServeReport fast = serve(trace, sc);
    ASSERT_GT(fast.kv_promoted_blocks, 0u);

    sc.far_memory.bandwidth_gbs = 1.0;
    sc.far_memory.latency_us = 50.0;
    const ServeReport slow = serve(trace, sc);
    EXPECT_GT(slow.promotion_stall_s, fast.promotion_stall_s);
    EXPECT_GT(slow.ttft_p99_s, 0.0);
}

TEST(TieredServe, TieredRunIsBitIdenticalAcrossThreadCounts)
{
    const auto trace = churningSharedPrefixTrace();
    ContinuousBatchConfig sc = tightCachingConfig(trace);
    sc.far_memory.capacity_gb = 64.0 / 1024.0;
    sc.num_threads = 1;
    const ServeReport ref = serve(trace, sc);
    ASSERT_GT(ref.kv_migrated_bytes, 0u);
    for (const std::size_t threads : {2u, 8u}) {
        sc.num_threads = threads;
        expectSameReport(ref, serve(trace, sc));
    }
}

} // namespace
} // namespace spatten
