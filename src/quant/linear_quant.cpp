#include "quant/linear_quant.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace spatten {
namespace quant {

float
chooseScale(const Tensor& x, int bits)
{
    SPATTEN_ASSERT(bits >= 2 && bits <= 16, "unsupported bitwidth %d", bits);
    float maxabs = 0.0f;
    for (std::size_t i = 0; i < x.numel(); ++i)
        maxabs = std::max(maxabs, std::fabs(x[i]));
    if (maxabs == 0.0f)
        return 1.0f;
    const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
    return maxabs / qmax;
}

QuantizedTensor
quantizeWithScale(const Tensor& x, int bits, float scale)
{
    SPATTEN_ASSERT(bits >= 2 && bits <= 16, "unsupported bitwidth %d", bits);
    SPATTEN_ASSERT(scale > 0.0f, "non-positive scale %f", scale);
    QuantizedTensor qt;
    qt.shape = x.shape();
    qt.scale = scale;
    qt.bits = bits;
    qt.q.resize(x.numel());
    const std::int32_t lo = qt.qmin(), hi = qt.qmax();
    for (std::size_t i = 0; i < x.numel(); ++i) {
        const float r = std::round(x[i] / scale);
        qt.q[i] = clampTo(static_cast<std::int32_t>(r), lo, hi);
    }
    return qt;
}

QuantizedTensor
quantize(const Tensor& x, int bits)
{
    return quantizeWithScale(x, bits, chooseScale(x, bits));
}

Tensor
dequantize(const QuantizedTensor& qt)
{
    Tensor out(qt.shape);
    for (std::size_t i = 0; i < qt.q.size(); ++i)
        out[i] = static_cast<float>(qt.q[i]) * qt.scale;
    return out;
}

Tensor
fakeQuantize(const Tensor& x, int bits)
{
    return dequantize(quantize(x, bits));
}

} // namespace quant
} // namespace spatten
