/**
 * @file
 * Shared helpers for the benchmark harness binaries: geometric means,
 * table printing, the standard banner that cites which paper
 * table/figure a binary regenerates, and machine-readable BENCH_*.json
 * emission so successive PRs accumulate a perf trajectory.
 */
#ifndef SPATTEN_BENCH_BENCH_UTIL_HPP
#define SPATTEN_BENCH_BENCH_UTIL_HPP

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "accel/pipeline.hpp"
#include "serve/batch_runner.hpp"
#include "serve/continuous_batch_scheduler.hpp"

namespace spatten {
namespace bench {

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += std::log(x);
    return std::exp(s / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Print the standard experiment banner. */
inline void
banner(const char* experiment, const char* description)
{
    std::printf("==============================================================\n");
    std::printf("SpAtten reproduction — %s\n", experiment);
    std::printf("%s\n", description);
    std::printf("==============================================================\n");
}

/** Print a horizontal rule. */
inline void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

/** One perf data point of a bench run. */
struct BenchRecord
{
    std::string workload;
    double cycles = 0;
    double seconds = 0;
    double tflops = 0;         ///< Effective attention TFLOPS.
    double dram_reduction = 1; ///< Dense fp32 bytes / fetched bytes.

    /// Serving-only tail metrics (recordFromServe): emitted as extra
    /// JSON fields so BENCH_serving.json carries the latency story —
    /// chunk-size sweeps read as an ITL-p99 curve, and queue-delay
    /// percentiles make admission latency visible, not just TTFT.
    /// Single-workload records (recordFromRun/recordFromBatch) keep
    /// the legacy five-field schema.
    bool has_serving = false;
    double ttft_p99_s = 0;
    double itl_p99_s = 0;
    double queue_delay_p50_s = 0;
    double queue_delay_p99_s = 0;
    /// Prefix-cache / tiered-KV accounting (serving records only):
    /// hit-rate numerators plus the cache-churn counters, so the
    /// tiered-vs-flat sweep reads as a hit-rate vs migration-traffic
    /// curve straight out of BENCH_serving.json.
    double prefix_cache_hits = 0;
    double prefix_cached_tokens = 0;
    double kv_evicted_blocks = 0;
    double kv_demoted_blocks = 0;
    double kv_promoted_blocks = 0;
    double kv_migrated_bytes = 0;
};

/** The BENCH_*.json record of a single-workload simulation result. */
inline BenchRecord
recordFromRun(const std::string& workload, const RunResult& r)
{
    return {workload, static_cast<double>(r.cycles), r.seconds,
            r.effectiveTflops(), r.dramReduction()};
}

/** The BENCH_*.json record of one ContinuousBatchScheduler run:
 *  makespan-based effective TFLOPS over the whole served trace. */
inline BenchRecord
recordFromServe(const std::string& workload, const ServeReport& r)
{
    BenchRecord rec{workload, r.total_cycles, r.makespan_s,
                    r.makespan_s > 0
                        ? r.total_flops / r.makespan_s * 1e-12
                        : 0.0,
                    r.dram_reduction};
    rec.has_serving = true;
    rec.ttft_p99_s = r.ttft_p99_s;
    rec.itl_p99_s = r.itl_p99_s;
    rec.queue_delay_p50_s = r.queue_delay_p50_s;
    rec.queue_delay_p99_s = r.queue_delay_p99_s;
    rec.prefix_cache_hits = static_cast<double>(r.prefix_cache_hits);
    rec.prefix_cached_tokens =
        static_cast<double>(r.prefix_cached_tokens);
    rec.kv_evicted_blocks = static_cast<double>(r.kv_evicted_blocks);
    rec.kv_demoted_blocks = static_cast<double>(r.kv_demoted_blocks);
    rec.kv_promoted_blocks = static_cast<double>(r.kv_promoted_blocks);
    rec.kv_migrated_bytes = static_cast<double>(r.kv_migrated_bytes);
    return rec;
}

/** The BENCH_*.json record of one BatchRunner batch (simulated totals,
 *  identical at every thread count). */
inline BenchRecord
recordFromBatch(const std::string& workload, const BatchResult& b)
{
    double cycles = 0;
    for (const RunResult& r : b.results)
        cycles += static_cast<double>(r.cycles);
    return {workload, cycles, b.total_seconds, b.aggregate_tflops,
            b.dram_reduction};
}

/** Escape backslashes and double quotes for a JSON string literal. */
inline std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * Emit `BENCH_<name>.json` in the working directory: one record per
 * workload plus the record count, so CI and later PRs can diff perf
 * without scraping stdout tables.
 */
inline void
writeBenchJson(const std::string& name,
               const std::vector<BenchRecord>& records)
{
    const std::string path = "BENCH_" + name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "warn: cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [\n",
                 name.c_str());
    for (std::size_t i = 0; i < records.size(); ++i) {
        const BenchRecord& r = records[i];
        std::fprintf(f,
                     "    {\"workload\": \"%s\", \"cycles\": %.0f, "
                     "\"seconds\": %.9g, \"tflops\": %.6g, "
                     "\"dram_reduction\": %.6g",
                     jsonEscape(r.workload).c_str(), r.cycles, r.seconds,
                     r.tflops, r.dram_reduction);
        if (r.has_serving)
            std::fprintf(f,
                         ", \"ttft_p99_s\": %.9g, \"itl_p99_s\": %.9g, "
                         "\"queue_delay_p50_s\": %.9g, "
                         "\"queue_delay_p99_s\": %.9g, "
                         "\"prefix_cache_hits\": %.0f, "
                         "\"prefix_cached_tokens\": %.0f, "
                         "\"kv_evicted_blocks\": %.0f, "
                         "\"kv_demoted_blocks\": %.0f, "
                         "\"kv_promoted_blocks\": %.0f, "
                         "\"kv_migrated_bytes\": %.0f",
                         r.ttft_p99_s, r.itl_p99_s, r.queue_delay_p50_s,
                         r.queue_delay_p99_s, r.prefix_cache_hits,
                         r.prefix_cached_tokens, r.kv_evicted_blocks,
                         r.kv_demoted_blocks, r.kv_promoted_blocks,
                         r.kv_migrated_bytes);
        std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());
}

} // namespace bench
} // namespace spatten

#endif // SPATTEN_BENCH_BENCH_UTIL_HPP
