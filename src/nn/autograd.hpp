/**
 * @file
 * Minimal training machinery for the transformer substrate: trainable
 * parameters with gradients and the Adam optimizer. Backpropagation is
 * implemented manually inside each layer (src/nn/layers.*), so this file
 * only owns parameter state and the update rule.
 */
#ifndef SPATTEN_NN_AUTOGRAD_HPP
#define SPATTEN_NN_AUTOGRAD_HPP

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace spatten {

/** A trainable tensor with gradient and Adam moment buffers. */
struct Param
{
    std::string name;
    Tensor value;
    Tensor grad;
    Tensor m; ///< Adam first moment.
    Tensor v; ///< Adam second moment.

    Param() = default;
    Param(std::string n, Tensor init);

    void zeroGrad();
    std::size_t numel() const { return value.numel(); }
};

/** Adam optimizer (Kingma & Ba) over a set of registered parameters. */
class AdamOptimizer
{
  public:
    struct Config
    {
        double lr = 1e-3;
        double beta1 = 0.9;
        double beta2 = 0.999;
        double eps = 1e-8;
        double grad_clip = 1.0; ///< Global-norm clip; <=0 disables.
    };

    AdamOptimizer() : AdamOptimizer(Config{}) {}
    explicit AdamOptimizer(Config cfg) : cfg_(cfg) {}

    /** Apply one update step to @p params and zero their gradients. */
    void step(std::vector<Param*>& params);

    const Config& config() const { return cfg_; }
    void setLr(double lr) { cfg_.lr = lr; }
    std::size_t stepCount() const { return t_; }

  private:
    Config cfg_;
    std::size_t t_ = 0;
};

/** Total parameter count of a parameter set. */
std::size_t totalParams(const std::vector<Param*>& params);

} // namespace spatten

#endif // SPATTEN_NN_AUTOGRAD_HPP
