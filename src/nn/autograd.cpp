#include "nn/autograd.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace spatten {

Param::Param(std::string n, Tensor init)
    : name(std::move(n)),
      value(std::move(init)),
      grad(value.shape()),
      m(value.shape()),
      v(value.shape())
{
}

void
Param::zeroGrad()
{
    grad.fill(0.0f);
}

void
AdamOptimizer::step(std::vector<Param*>& params)
{
    ++t_;
    // Optional global-norm gradient clipping.
    double scale = 1.0;
    if (cfg_.grad_clip > 0.0) {
        double norm2 = 0.0;
        for (const Param* p : params)
            for (std::size_t i = 0; i < p->grad.numel(); ++i)
                norm2 += static_cast<double>(p->grad[i]) * p->grad[i];
        const double norm = std::sqrt(norm2);
        if (norm > cfg_.grad_clip)
            scale = cfg_.grad_clip / norm;
    }
    const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
    for (Param* p : params) {
        SPATTEN_ASSERT(p->grad.numel() == p->value.numel(),
                       "grad/value mismatch for %s", p->name.c_str());
        for (std::size_t i = 0; i < p->value.numel(); ++i) {
            const double g = p->grad[i] * scale;
            p->m[i] = static_cast<float>(cfg_.beta1 * p->m[i] +
                                         (1.0 - cfg_.beta1) * g);
            p->v[i] = static_cast<float>(cfg_.beta2 * p->v[i] +
                                         (1.0 - cfg_.beta2) * g * g);
            const double mhat = p->m[i] / bc1;
            const double vhat = p->v[i] / bc2;
            p->value[i] -= static_cast<float>(
                cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps));
        }
        p->zeroGrad();
    }
}

std::size_t
totalParams(const std::vector<Param*>& params)
{
    std::size_t n = 0;
    for (const Param* p : params)
        n += p->numel();
    return n;
}

} // namespace spatten
