#include "baselines/mnnfast_model.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace spatten {

MnnFastResult
MnnFastModel::run(const WorkloadSpec& workload) const
{
    SPATTEN_ASSERT(!workload.isGenerative(),
                   "MNNFast only accelerates discriminative workloads");
    const ModelSpec& m = workload.model;
    const double d = static_cast<double>(m.d_head);
    const double h = static_cast<double>(m.num_heads);
    const double n = static_cast<double>(workload.summarize_len);
    const double layers = static_cast<double>(m.num_layers);
    const double macs_per_ns = static_cast<double>(cfg_.num_multipliers) *
                               cfg_.freq_ghz * cfg_.datapath_efficiency;

    MnnFastResult res;
    const double qk_macs_layer = n * n * d * h;
    const double pv_dense_layer = n * n * d * h;
    res.dense_flops = 2.0 * (qk_macs_layer + pv_dense_layer) * layers;

    // Only the prob x V side shrinks (local V pruning by threshold —
    // no top-k hardware needed, the comparison is free).
    const double pv_exec_layer =
        pv_dense_layer * (1.0 - cfg_.v_prune_ratio);
    const double exec_macs_layer = qk_macs_layer + pv_exec_layer;

    // Full QKV DRAM traffic (pruning decided after fetch), fp16 operands
    // (the design does not support aggressive quantization).
    const double bytes_layer = 3.0 * n * d * h * 2.0;
    res.dram_bytes = bytes_layer * layers;

    const double compute_ns_layer = exec_macs_layer / macs_per_ns;
    const double mem_ns_layer = bytes_layer / cfg_.mem_bw_gbs;
    res.seconds = std::max(compute_ns_layer, mem_ns_layer) * layers * 1e-9;
    res.energy_j = 2.0 * exec_macs_layer * layers *
                       cfg_.energy_per_flop_pj * 1e-12 +
                   res.dram_bytes * 8.0 * 3.9 * 1e-12;
    return res;
}

} // namespace spatten
