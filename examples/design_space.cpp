/// Design-space exploration through the public API: sweep accelerator
/// configurations (multiplier count, top-k parallelism, HBM channels)
/// over one workload and print the latency / energy / area trade-offs.
#include <cstdio>

#include "accel/spatten_accelerator.hpp"

int
main()
{
    using namespace spatten;

    WorkloadSpec w;
    w.name = "dse-gpt2";
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = 992;
    w.generate_len = 32;
    w.skip_summarization = true;

    PruningPolicy policy;
    policy.token_avg_ratio = 0.22;
    policy.head_avg_ratio = 0.08;
    policy.local_v_ratio = 0.35;
    policy.pq.enabled = true;
    policy.pq.setting = {8, 4};
    policy.lsb_fraction = 0.059;

    std::printf("%-10s %-8s %-10s | %12s %12s %10s %12s\n", "mults",
                "topk-P", "HBM ch", "latency us", "energy mJ",
                "area mm2", "GFLOPS");
    std::printf("---------------------------------------------------------"
                "---------------------\n");
    for (std::size_t mults : {256u, 512u, 1024u, 2048u}) {
        for (std::size_t topk_p : {4u, 16u}) {
            for (int channels : {8, 16}) {
                SpAttenConfig cfg;
                cfg.qk.num_multipliers = mults / 2;
                cfg.pv.num_multipliers = mults / 2;
                cfg.topk_parallelism = topk_p;
                cfg.hbm.channels = channels;
                SpAttenAccelerator accel(cfg);
                const RunResult r = accel.run(w, policy);
                std::printf("%-10zu %-8zu %-10d | %12.1f %12.3f %10.2f "
                            "%12.0f\n",
                            mults, topk_p, channels, r.seconds * 1e6,
                            r.energy.totalJ() * 1e3, accel.areaMm2(),
                            r.attention_flops / r.seconds * 1e-9);
            }
        }
    }
    std::printf("\nTakeaways (match Fig. 19): top-k parallelism matters "
                "until it stops being the bottleneck; the generation "
                "stage scales with HBM bandwidth, not multipliers.\n");
    return 0;
}
