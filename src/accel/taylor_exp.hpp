/**
 * @file
 * Hardware exponential function (§V-A): the paper's softmax unit
 * evaluates e^x with a 5th-order Taylor expansion on floating-point
 * multiply-accumulate units (after Nilsson et al., NORCHIP'14).
 *
 * Softmax inputs are pre-normalized to x = s_i - max(s) <= 0; to keep the
 * truncated series accurate over the full range, the hardware splits
 * x = -(k * ln2 + r) with r in [0, ln2) and computes e^x = 2^-k * e^-r,
 * where e^-r uses the 5-term Horner-form Taylor series (one FMA chain).
 */
#ifndef SPATTEN_ACCEL_TAYLOR_EXP_HPP
#define SPATTEN_ACCEL_TAYLOR_EXP_HPP

#include <cstddef>

namespace spatten {

/**
 * 5th-order Taylor e^x for x <= 0, with range reduction.
 * @pre x <= 0 (softmax-normalized scores).
 */
float taylorExp5(float x);

/** Number of FMA operations one evaluation costs (for energy). */
constexpr std::size_t kTaylorExpFmas = 7; // 5 Horner + reduce/scale

/**
 * Worst-case relative error of taylorExp5 over [lo, 0], measured by a
 * dense sweep (used by tests and documentation).
 */
double taylorExp5MaxRelError(float lo, std::size_t samples = 4096);

} // namespace spatten

#endif // SPATTEN_ACCEL_TAYLOR_EXP_HPP
