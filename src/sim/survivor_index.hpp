/**
 * @file
 * CSR-compacted survivor index.
 *
 * One pass of the cascade-pruned attention dataflow produces, per
 * layer, the set of tokens surviving into that layer. Storing those
 * sets as a jagged vector-of-vectors costs one heap row per layer and
 * scatters the pass's pruning structure across allocations; the
 * SurvivorIndex stores it in CSR form instead — one contiguous `ids`
 * array plus per-layer offsets — so a whole pass is two flat arrays
 * and per-pass bookkeeping cost scales with survivors, not with the
 * full context length.
 *
 * Two producers share the container:
 *  - The functional path (nn/transformer, core/attention_ref) appends
 *    materialized rows of global token ids (CascadeTokenPruner
 *    output), preserving the ascending-id order the pruner keeps.
 *  - The analytic timing path appends *compact* rows: the hardware
 *    zero-eliminator packs survivors into contiguous SRAM slots, so
 *    the ids entering a layer are by construction [0, count) and only
 *    the row width is recorded (`ids` stays empty). Stage models read
 *    each layer's survivor count through the index
 *    (ExecutionContext::survivorTokens).
 */
#ifndef SPATTEN_SIM_SURVIVOR_INDEX_HPP
#define SPATTEN_SIM_SURVIVOR_INDEX_HPP

#include <cstddef>
#include <vector>

#include "common/logging.hpp"

namespace spatten {

/** Per-layer survivor sets of one pass, in CSR layout. */
class SurvivorIndex
{
  public:
    /** Drop all rows; @p expected_layers pre-sizes the offset array so
     *  steady-state decode passes never reallocate. */
    void reset(std::size_t expected_layers = 0)
    {
        ids_.clear();
        offsets_.clear();
        offsets_.reserve(expected_layers + 1);
        offsets_.push_back(0);
    }

    /** Append one materialized row of surviving global token ids. */
    void appendLayer(const std::vector<std::size_t>& row)
    {
        ids_.insert(ids_.end(), row.begin(), row.end());
        offsets_.push_back(ids_.size());
    }

    /**
     * Append one compact row: @p count survivors whose ids are the
     * implicit post-compaction slots [0, count). Compact and
     * materialized rows cannot mix within one index.
     */
    void appendCompactLayer(std::size_t count)
    {
        SPATTEN_ASSERT(ids_.empty(),
                       "compact row appended to a materialized index");
        offsets_.push_back(offsets_.back() + count);
    }

    /** Rows appended so far (layers entered). */
    std::size_t layers() const { return offsets_.size() - 1; }

    /** Survivors entering layer @p layer. */
    std::size_t count(std::size_t layer) const
    {
        SPATTEN_ASSERT(layer + 1 < offsets_.size(),
                       "survivor row %zu of %zu", layer, layers());
        return offsets_[layer + 1] - offsets_[layer];
    }

    /** Survivors entering the most recent layer (0 when empty). */
    std::size_t back() const
    {
        return layers() > 0 ? count(layers() - 1) : 0;
    }

    /** True when rows carry explicit ids (functional path). Compact
     *  rows leave ids empty — their ids are the identity [0, count). */
    bool materialized() const
    {
        return ids_.size() == offsets_.back();
    }

    /** Materialized row bounds: ids [begin, end) survive into @p layer,
     *  ascending. */
    const std::size_t* rowBegin(std::size_t layer) const
    {
        SPATTEN_ASSERT(materialized(), "compact index has no ids");
        return ids_.data() + offsets_[layer];
    }
    const std::size_t* rowEnd(std::size_t layer) const
    {
        SPATTEN_ASSERT(materialized(), "compact index has no ids");
        return ids_.data() + offsets_[layer + 1];
    }

    const std::vector<std::size_t>& ids() const { return ids_; }
    const std::vector<std::size_t>& offsets() const { return offsets_; }

  private:
    std::vector<std::size_t> ids_;
    std::vector<std::size_t> offsets_{0};
};

} // namespace spatten

#endif // SPATTEN_SIM_SURVIVOR_INDEX_HPP
