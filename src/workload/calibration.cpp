#include "workload/calibration.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "core/schedule.hpp"

namespace spatten {

namespace {

/** Mean per-layer keep fraction of the standard token schedule. */
double
scheduleMeanKeep(double avg_ratio, std::size_t layers)
{
    const PruningSchedule s = makeTokenSchedule(layers, avg_ratio);
    double keep = 1.0, sum = 0.0;
    for (std::size_t l = 0; l < layers; ++l) {
        sum += keep; // alive fraction entering layer l
        keep *= 1.0 - s.ratioAt(l);
    }
    return sum / static_cast<double>(layers);
}

CalibrationResult
finish(const PruningPolicy& policy, const PrunedRunStats& stats,
       double accuracy_delta, std::size_t layers)
{
    CalibrationResult res;
    res.measured_keys_frac = stats.avg_keys_frac;
    res.measured_lsb_fraction = stats.lsb_fraction;
    res.accuracy_delta = accuracy_delta;
    res.equivalent_avg_ratio =
        equivalentAvgRatio(stats.avg_keys_frac, layers);
    res.calibrated = policy;
    res.calibrated.lsb_fraction = stats.lsb_fraction;
    res.calibrated.token_avg_ratio = res.equivalent_avg_ratio;
    return res;
}

} // namespace

double
equivalentAvgRatio(double mean_keep, std::size_t layers)
{
    SPATTEN_ASSERT(mean_keep > 0.0 && mean_keep <= 1.0,
                   "mean keep %f out of (0,1]", mean_keep);
    if (mean_keep >= 0.9999 || layers == 0)
        return 0.0;
    double lo = 0.0, hi = 0.95;
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (scheduleMeanKeep(mid, layers) > mean_keep)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

CalibrationResult
calibrateClassifier(const TransformerModel& model,
                    const std::vector<ClassifyExample>& examples,
                    const PruningPolicy& policy)
{
    SPATTEN_ASSERT(!examples.empty(), "no calibration examples");
    const double dense = classifierAccuracy(model, examples);
    PrunedRunStats stats;
    const double pruned =
        classifierAccuracyPruned(model, examples, policy, &stats);
    return finish(policy, stats, pruned - dense,
                  model.config().layers);
}

CalibrationResult
calibrateLm(const TransformerModel& model,
            const std::vector<LmExample>& examples,
            const PruningPolicy& policy)
{
    SPATTEN_ASSERT(!examples.empty(), "no calibration examples");
    const double dense = lmMeanLoss(model, examples);
    PrunedRunStats stats;
    const double pruned =
        lmMeanLossPruned(model, examples, policy, &stats);
    // Report loss increase as a negative "accuracy" delta.
    return finish(policy, stats, dense - pruned, model.config().layers);
}

} // namespace spatten
