#include "accel/pv_module.hpp"

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace spatten {

PvModule::PvModule(PvModuleConfig cfg) : cfg_(cfg)
{
    SPATTEN_ASSERT(cfg_.num_multipliers > 0, "need multipliers");
}

PvTiming
PvModule::timing(std::size_t kept_rows, std::size_t d) const
{
    SPATTEN_ASSERT(d > 0 && d <= cfg_.num_multipliers,
                   "head dim %zu vs %zu multipliers", d,
                   cfg_.num_multipliers);
    PvTiming t;
    const std::size_t rows_per_cycle =
        std::max<std::size_t>(1, cfg_.num_multipliers / d);
    t.cycles = ceilDiv(kept_rows, rows_per_cycle);
    t.macs = kept_rows * d;
    return t;
}

StageTiming
PvModule::timing(const ExecutionContext& ctx) const
{
    StageTiming t;
    t.ii_cycles = timing(ctx.kept_values, ctx.d_head).cycles;
    return t;
}

ActivityCounts
PvModule::energy(const ExecutionContext& ctx) const
{
    ActivityCounts a;
    a.pv_macs = ctx.queryRows() *
                static_cast<double>(ctx.kept_values) *
                static_cast<double>(ctx.d_head);
    return a;
}

StageTraffic
PvModule::traffic(const ExecutionContext& ctx) const
{
    StageTraffic t;
    // Only the V rows surviving local value pruning are read.
    t.sram_read_elems = ctx.queryRows() *
                        static_cast<double>(ctx.kept_values) *
                        static_cast<double>(ctx.d_head);
    return t;
}

std::vector<float>
PvModule::accumulate(const std::vector<float>& prob,
                     const std::vector<std::vector<float>>& v,
                     const std::vector<std::size_t>& kept) const
{
    SPATTEN_ASSERT(prob.size() == v.size(), "prob/V row mismatch");
    if (v.empty())
        return {};
    const std::size_t d = v[0].size();
    std::vector<float> out(d, 0.0f);
    for (std::size_t idx : kept) {
        SPATTEN_ASSERT(idx < v.size(), "kept index %zu out of %zu", idx,
                       v.size());
        const float p = prob[idx];
        for (std::size_t j = 0; j < d; ++j)
            out[j] += p * v[idx][j];
    }
    return out;
}

} // namespace spatten
