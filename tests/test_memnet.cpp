/// Tests for the memory-augmented network generalization (§VI):
/// training, dense QA accuracy, and cascade memory-slot pruning.
#include <gtest/gtest.h>

#include "nn/memnet.hpp"

namespace spatten {
namespace {

MemNetConfig
smallConfig(const MemoryQaTask& task)
{
    MemNetConfig cfg;
    cfg.vocab = task.vocabSize();
    cfg.dim = 32;
    cfg.hops = 2;
    return cfg;
}

TEST(MemoryQaTask, ExamplesWellFormed)
{
    MemoryQaTask task;
    for (const auto& ex : task.sample(30)) {
        EXPECT_FALSE(ex.facts.empty());
        // The query key exists in exactly one slot, whose value is the
        // answer.
        std::size_t hits = 0;
        for (const auto& f : ex.facts) {
            EXPECT_LT(f.key, task.config().num_keys);
            EXPECT_GE(f.value, task.config().num_keys);
            if (f.key == ex.query) {
                ++hits;
                EXPECT_EQ(f.value, ex.answer);
            }
        }
        EXPECT_EQ(hits, 1u);
    }
}

TEST(MemNet, TrainingReducesLoss)
{
    MemoryQaTask task;
    MemoryNetwork net(smallConfig(task));
    const auto train = task.sample(400);
    double first = 0.0, last = 0.0;
    for (int epoch = 0; epoch < 12; ++epoch) {
        double sum = 0.0;
        for (const auto& ex : train)
            sum += net.trainStep(ex);
        if (epoch == 0)
            first = sum;
        last = sum;
    }
    EXPECT_LT(last, first * 0.5);
}

TEST(MemNet, LearnsLookup)
{
    MemoryQaTask task;
    MemoryNetwork net(smallConfig(task));
    const auto train = task.sample(400);
    for (int epoch = 0; epoch < 12; ++epoch)
        for (const auto& ex : train)
            net.trainStep(ex);
    const double acc = net.accuracy(task.sample(60));
    EXPECT_GT(acc, 0.8);
}

TEST(MemNet, SlotPruningPreservesAccuracy)
{
    // §VI generalization: the relevant slot dominates the attention
    // distribution, so pruning half the memory between hops is free.
    MemoryQaTask task;
    MemoryNetwork net(smallConfig(task));
    const auto train = task.sample(400);
    for (int epoch = 0; epoch < 12; ++epoch)
        for (const auto& ex : train)
            net.trainStep(ex);
    const auto test = task.sample(60);
    const double dense = net.accuracy(test);
    double kept = 1.0;
    const double pruned = net.accuracyPruned(test, 0.5, &kept);
    EXPECT_LT(kept, 1.0);
    EXPECT_GE(pruned, dense - 0.1);
}

TEST(MemNet, ZeroRatioMatchesDense)
{
    MemoryQaTask task;
    MemoryNetwork net(smallConfig(task));
    for (const auto& ex : task.sample(10)) {
        MemPruneStats st;
        EXPECT_EQ(net.predictPruned(ex, 0.0, &st), net.predict(ex));
        EXPECT_DOUBLE_EQ(st.slots_kept_frac, 1.0);
    }
}

TEST(MemNet, PruningIsCascade)
{
    // Survivor sets shrink monotonically across hops (ratio applies
    // between hops; final survivors <= initial slots).
    MemoryQaTask task;
    MemNetConfig cfg = smallConfig(task);
    cfg.hops = 3;
    MemoryNetwork net(cfg);
    const auto ex = task.sample(1).front();
    MemPruneStats st;
    net.predictPruned(ex, 0.4, &st);
    EXPECT_LT(st.surviving_slots.size(), ex.facts.size());
    // Ascending slot ids (order preserved).
    EXPECT_TRUE(std::is_sorted(st.surviving_slots.begin(),
                               st.surviving_slots.end()));
}

TEST(MemNet, RejectsInvalidRatio)
{
    MemoryQaTask task;
    MemoryNetwork net(smallConfig(task));
    const auto ex = task.sample(1).front();
    EXPECT_DEATH(net.predictPruned(ex, 1.0), "ratio");
}

} // namespace
} // namespace spatten
