#include "accel/pipeline.hpp"

#include "accel/attention_graph.hpp"
#include "common/logging.hpp"

namespace spatten {

SpAttenConfig
SpAttenConfig::eighth()
{
    SpAttenConfig c;
    c.qk.num_multipliers = 64;
    c.pv.num_multipliers = 64;
    c.qk.max_tree_outputs = 1;
    c.softmax.parallelism = 1;
    c.topk_parallelism = 2;
    c.key_sram_kb = 24;
    c.value_sram_kb = 24;
    c.hbm.channels = 2; // 64 GB/s, matching the A3 comparison setup.
    return c;
}

SpAttenPipeline::SpAttenPipeline(SpAttenConfig cfg) : cfg_(cfg)
{
    SPATTEN_ASSERT(cfg_.core_freq_ghz > 0, "bad core clock");
}

RunResult
SpAttenPipeline::run(const WorkloadSpec& workload,
                     const PruningPolicy& policy,
                     std::uint64_t request_seed)
{
    SPATTEN_ASSERT(workload.summarize_len >= 1, "empty input");
    SPATTEN_ASSERT(workload.summarize_len + workload.generate_len <=
                       cfg_.max_context,
                   "context %zu exceeds SRAM-backed max %zu",
                   workload.summarize_len + workload.generate_len,
                   cfg_.max_context);

    AttentionGraph graph(cfg_, workload, policy, request_seed);
    RunResult res;
    res.workload = workload.name;

    // Summarization stage (skipped when the workload measures the
    // generation stage only, per the paper's GPT-2 methodology).
    if (!workload.skip_summarization)
        graph.runPass(workload.summarize_len, workload.summarize_len,
                      false);
    res.summarize_seconds = graph.elapsedSeconds();

    // Generation stage: context grows by one token per iteration; tokens
    // pruned in earlier passes stay pruned (cascade across iterations is
    // approximated by re-applying the schedule to the grown context).
    for (std::size_t t = 0; t < workload.generate_len; ++t)
        graph.runPass(1, workload.summarize_len + t + 1, true);
    res.generate_seconds = graph.elapsedSeconds() - res.summarize_seconds;

    graph.finalize(res);
    return res;
}

} // namespace spatten
