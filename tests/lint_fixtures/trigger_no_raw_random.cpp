// Fixture: MUST trigger no-raw-random. A scheduler that draws jitter
// from libc rand() — seeded or not, the stream is process-global and
// not replayable per request.
#include <cstdlib>
#include <random>

namespace fixture {

int arrivalJitter()
{
    std::random_device rd; // second independent trigger on this rule
    return rand() % 7 + static_cast<int>(rd() % 3);
}

} // namespace fixture
