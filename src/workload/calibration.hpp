/**
 * @file
 * Bridge between the functional experiments and the timing model: run a
 * trained model under a pruning policy, measure what the policy actually
 * did (surviving-key fractions, LSB-refetch rate), and produce a
 * calibrated PruningPolicy for the accelerator simulator.
 *
 * This mirrors the paper's methodology: pruning ratios and the
 * LSB fraction (5.9% average) are *measured* on real tasks, then the
 * hardware evaluation uses those measured parameters.
 */
#ifndef SPATTEN_WORKLOAD_CALIBRATION_HPP
#define SPATTEN_WORKLOAD_CALIBRATION_HPP

#include "nn/trainer.hpp"

namespace spatten {

/** What a policy measurably did on a task. */
struct CalibrationResult
{
    PruningPolicy calibrated;     ///< Input policy with measured knobs.
    double measured_keys_frac = 1.0; ///< Mean per-layer alive-key frac.
    double measured_lsb_fraction = 0.0;
    double accuracy_delta = 0.0;  ///< Pruned minus dense (classification)
                                  ///< or dense-minus-pruned loss (LM).
    /// Equivalent per-layer average ratio that reproduces the measured
    /// mean keep fraction under the standard schedule.
    double equivalent_avg_ratio = 0.0;
};

/**
 * Calibrate a policy on a trained classifier: measures accuracy impact,
 * surviving fractions and the LSB rate, and back-solves the per-layer
 * ratio the accelerator should simulate.
 */
CalibrationResult
calibrateClassifier(const TransformerModel& model,
                    const std::vector<ClassifyExample>& examples,
                    const PruningPolicy& policy);

/** Same for a trained causal LM (teacher-forced evaluation). */
CalibrationResult
calibrateLm(const TransformerModel& model,
            const std::vector<LmExample>& examples,
            const PruningPolicy& policy);

/**
 * Back-solve: the uniform-schedule average ratio r such that the mean
 * per-layer keep fraction over `layers` layers (front 15% unpruned)
 * equals @p mean_keep. Bisection; exact for the standard schedule.
 */
double equivalentAvgRatio(double mean_keep, std::size_t layers);

} // namespace spatten

#endif // SPATTEN_WORKLOAD_CALIBRATION_HPP
