/// Tests for the simulation substrate: clock domains, resources, FIFOs
/// and the stats registry.
#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/fifo.hpp"
#include "sim/stats.hpp"

namespace spatten {
namespace {

TEST(ClockDomain, Conversions)
{
    ClockDomain clk(1.0);
    EXPECT_DOUBLE_EQ(clk.toNs(1000), 1000.0);
    EXPECT_DOUBLE_EQ(clk.toSeconds(1000000000ULL), 1.0);
    EXPECT_EQ(clk.fromNs(10.0), 10u);

    ClockDomain hbm(2.0, "hbm");
    EXPECT_DOUBLE_EQ(hbm.toNs(1000), 500.0);
    EXPECT_EQ(hbm.fromNs(10.0), 20u);
}

TEST(ClockDomain, FromNsRoundsUp)
{
    ClockDomain clk(1.0);
    EXPECT_EQ(clk.fromNs(0.1), 1u);
    EXPECT_EQ(clk.fromNs(0.0), 0u);
}

TEST(Resource, SerializesWork)
{
    Resource r("mult");
    EXPECT_EQ(r.acquire(0, 10), 10u);
    // Second item ready at 5 must wait until 10.
    EXPECT_EQ(r.acquire(5, 10), 20u);
    // Item arriving after the unit is free starts immediately.
    EXPECT_EQ(r.acquire(100, 5), 105u);
    EXPECT_EQ(r.busyCycles(), 25u);
}

TEST(Resource, Utilization)
{
    Resource r;
    r.acquire(0, 50);
    EXPECT_DOUBLE_EQ(r.utilization(100), 0.5);
    EXPECT_DOUBLE_EQ(r.utilization(0), 0.0);
}

TEST(Resource, ResetClears)
{
    Resource r;
    r.acquire(0, 10);
    r.reset();
    EXPECT_EQ(r.freeAt(), 0u);
    EXPECT_EQ(r.busyCycles(), 0u);
}

TEST(Fifo, FifoOrder)
{
    Fifo<int> f(4, "t");
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
    EXPECT_TRUE(f.empty());
}

TEST(Fifo, BackpressureWhenFull)
{
    Fifo<int> f(2);
    EXPECT_TRUE(f.tryPush(1));
    EXPECT_TRUE(f.tryPush(2));
    EXPECT_TRUE(f.full());
    EXPECT_FALSE(f.tryPush(3));
    EXPECT_EQ(f.rejectedPushes(), 1u);
    f.pop();
    EXPECT_TRUE(f.tryPush(3));
}

TEST(Fifo, PeakOccupancyTracked)
{
    Fifo<int> f(8);
    for (int i = 0; i < 5; ++i)
        f.push(i);
    for (int i = 0; i < 5; ++i)
        f.pop();
    f.push(42);
    EXPECT_EQ(f.peakOccupancy(), 5u);
    EXPECT_EQ(f.totalPushes(), 6u);
}

TEST(Fifo, FrontDoesNotPop)
{
    Fifo<int> f(2);
    f.push(7);
    EXPECT_EQ(f.front(), 7);
    EXPECT_EQ(f.size(), 1u);
}

TEST(StatSet, AddAndGet)
{
    StatSet s;
    s.add("x", 1.0);
    s.add("x", 2.0);
    EXPECT_DOUBLE_EQ(s.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(s.get("missing"), 0.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_FALSE(s.has("missing"));
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.add("x", 5.0);
    s.set("x", 1.0);
    EXPECT_DOUBLE_EQ(s.get("x"), 1.0);
}

TEST(StatSet, MergeSums)
{
    StatSet a, b;
    a.add("x", 1.0);
    b.add("x", 2.0);
    b.add("y", 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 3.0);
}

// Gauges (written via set(): utilizations, config echoes, reductions)
// must never be summed when result stats are merged into an aggregate —
// the regression was merge() treating every entry as a counter.
TEST(StatSet, MergeOverwritesGaugesInsteadOfSumming)
{
    StatSet a, b;
    a.set("pipeline.dram_reduction", 3.9);
    a.add("hbm.bytes_read", 100.0);
    b.set("pipeline.dram_reduction", 36.5);
    b.add("hbm.bytes_read", 50.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("pipeline.dram_reduction"), 36.5)
        << "gauges adopt the merged-in value, never the sum";
    EXPECT_DOUBLE_EQ(a.get("hbm.bytes_read"), 150.0)
        << "counters still sum";
    EXPECT_TRUE(a.isGauge("pipeline.dram_reduction"));
    EXPECT_FALSE(a.isGauge("hbm.bytes_read"));
}

TEST(StatSet, AddAfterSetReclassifiesAsCounter)
{
    StatSet a, b;
    a.set("x", 1.0);
    a.add("x", 2.0); // Latest write style wins: x is a counter again.
    EXPECT_FALSE(a.isGauge("x"));
    b.add("x", 4.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 7.0) << "counters sum on merge";
}

TEST(StatSet, MergingCounterOverGaugeReclassifiesAsCounter)
{
    StatSet a, b;
    a.set("x", 1.0);
    b.add("x", 2.0);
    a.merge(b); // Counter merged over a gauge: latest write style wins.
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_FALSE(a.isGauge("x"))
        << "a merged-in counter must clear the stale gauge mark";
}

TEST(StatSet, MergingGaugeIntoCounterlessSetKeepsGaugeKind)
{
    StatSet a, b;
    b.set("util", 0.5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("util"), 0.5);
    EXPECT_TRUE(a.isGauge("util"));
    StatSet c;
    c.set("util", 0.7);
    a.merge(c);
    EXPECT_DOUBLE_EQ(a.get("util"), 0.7);
}

TEST(StatSet, ToStringContainsNames)
{
    StatSet s;
    s.add("alpha", 1.0);
    const std::string out = s.toString();
    EXPECT_NE(out.find("alpha"), std::string::npos);
}

// ---------------------------------------------------------------------
// sortedQuantile: linear interpolation between adjacent ranks
// ---------------------------------------------------------------------

TEST(SortedQuantile, EmptyAndSingleton)
{
    EXPECT_DOUBLE_EQ(sortedQuantile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(sortedQuantile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(sortedQuantile({7.0}, 0.5), 7.0);
    EXPECT_DOUBLE_EQ(sortedQuantile({7.0}, 1.0), 7.0);
}

TEST(SortedQuantile, MedianInterpolatesEvenSamples)
{
    EXPECT_DOUBLE_EQ(sortedQuantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(sortedQuantile({1.0, 2.0, 3.0}, 0.5), 2.0);
}

TEST(SortedQuantile, P99InterpolatesSmallSamples)
{
    // 10 samples: rank = 0.99 * 9 = 8.91 -> between the 9th and 10th
    // order statistics, NOT the 9th (the old nearest-rank "p89" bug).
    std::vector<double> ten;
    for (int i = 1; i <= 10; ++i)
        ten.push_back(static_cast<double>(i));
    EXPECT_NEAR(sortedQuantile(ten, 0.99), 9.91, 1e-12);
    EXPECT_GT(sortedQuantile(ten, 0.99), ten[8])
        << "p99 of 10 samples must exceed the 9th order statistic";

    // 64 samples (one per request of the serving bench trace):
    // rank = 0.99 * 63 = 62.37 -> 63.37 over the values 1..64, strictly
    // above the old nearest-rank answer of 62 (~p98.4).
    std::vector<double> sixty_four;
    for (int i = 1; i <= 64; ++i)
        sixty_four.push_back(static_cast<double>(i));
    EXPECT_NEAR(sortedQuantile(sixty_four, 0.99), 63.37, 1e-12);
}

TEST(SortedQuantile, ExtremesAndClamping)
{
    const std::vector<double> v{1.0, 5.0, 9.0};
    EXPECT_DOUBLE_EQ(sortedQuantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(sortedQuantile(v, 1.0), 9.0);
    EXPECT_DOUBLE_EQ(sortedQuantile(v, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(sortedQuantile(v, 1.5), 9.0);
}

TEST(SortedQuantile, MonotoneInQ)
{
    const std::vector<double> v{0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
    double prev = sortedQuantile(v, 0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        const double cur = sortedQuantile(v, q);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

} // namespace
} // namespace spatten
