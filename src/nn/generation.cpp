#include "nn/generation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "core/pruning.hpp"
#include "quant/linear_quant.hpp"
#include "tensor/ops.hpp"

namespace spatten {

GenerativeRunner::GenerativeRunner(const TransformerModel& model)
    : model_(model)
{
}

std::vector<double>
GenerativeRunner::stepToken(Beam& beam, std::size_t token,
                            std::size_t position,
                            const PruningPolicy& policy)
{
    const auto& cfg = model_.cfg_;
    const std::size_t h_total = cfg.heads;
    const std::size_t d = cfg.d_model / h_total;
    const float inv = 1.0f / std::sqrt(static_cast<float>(d));

    Tensor x = model_.embed_.forwardOne(token, position);
    for (std::size_t l = 0; l < model_.blocks_.size(); ++l) {
        const TransformerBlock& blk = model_.blocks_[l];
        LayerCache& cache = beam.caches[l];

        const Tensor q = blk.attn_.wq_.forward(x);
        const Tensor k = blk.attn_.wk_.forward(x);
        const Tensor v = blk.attn_.wv_.forward(x);
        cache.k.emplace_back(k.vec());
        cache.v.emplace_back(v.vec());
        cache.pos.push_back(position);
        if (policy.pq.enabled) {
            // The appended key row lives in DRAM as MSB + LSB planes.
            cache.kq.push_back(
                quant::splitPlanes(k, policy.pq.setting));
        }

        const std::size_t rows = cache.k.size();
        // Key views for scoring: the eager pass sees MSB-only keys,
        // the recompute pass sees the fully reconstructed codes.
        const auto keyElem = [&](std::size_t r, std::size_t col,
                                 bool full) -> float {
            if (!policy.pq.enabled)
                return cache.k[r][col];
            const BitplaneTensor& bp = cache.kq[r];
            const int lsb = bp.setting.lsb_bits;
            if (full) {
                const std::int32_t code = quant::reconstructCode(
                    bp.msb[col], bp.lsb[col], lsb);
                return static_cast<float>(code) * bp.scale;
            }
            return static_cast<float>(bp.msb[col]) * bp.scale *
                   static_cast<float>(1 << lsb);
        };
        const auto scorePass = [&](std::size_t head, bool full,
                                   std::vector<float>& prob) -> float {
            std::vector<float> scores(rows);
            for (std::size_t r = 0; r < rows; ++r) {
                float acc = 0.0f;
                for (std::size_t j = 0; j < d; ++j)
                    acc += q[head * d + j] * keyElem(r, head * d + j,
                                                     full);
                scores[r] = acc * inv;
            }
            // Seed the max-scan with -inf instead of scores[0]: rows is
            // never 0 here (the new key row is appended above), but the
            // element-0 read is what GCC's -Wnull-dereference flags, and
            // the -inf seed is bit-identical for any non-empty scan.
            float m = -std::numeric_limits<float>::infinity();
            for (float s : scores)
                m = std::max(m, s);
            double denom = 0.0;
            prob.resize(rows);
            for (std::size_t r = 0; r < rows; ++r) {
                prob[r] = std::exp(scores[r] - m);
                denom += prob[r];
            }
            float maxp = 0.0f;
            for (auto& p : prob) {
                p = static_cast<float>(p / denom);
                maxp = std::max(maxp, p);
            }
            return maxp;
        };

        Tensor concat({1, cfg.d_model});
        for (std::size_t head : heads_alive_) {
            std::vector<float> prob;
            const float maxp = scorePass(head, false, prob);
            total_rows_ += 1.0;
            if (maxp < policy.pq.max_prob_threshold) {
                flat_rows_ += 1.0;
                if (policy.pq.enabled) {
                    // Flat distribution: fetch LSBs and recompute
                    // (Fig. 6). One extra pass, more precise scores.
                    lsb_refetches_ += 1.0;
                    scorePass(head, true, prob);
                }
            }
            token_acc_.accumulateRow(prob, cache.pos);

            const auto kept =
                policy.local_value_pruning
                    ? localValuePrune(prob, policy.local_v_ratio)
                    : localValuePrune(prob, 0.0);
            double head_mag = 0.0;
            for (std::size_t j = 0; j < d; ++j) {
                float acc = 0.0f;
                for (std::size_t idx : kept)
                    acc += prob[idx] * cache.v[idx][head * d + j];
                concat.at(0, head * d + j) = acc;
                head_mag += std::fabs(acc);
            }
            head_acc_.accumulateAbsSum(head_mag, head);
        }
        const Tensor attn_out = blk.attn_.wo_.forward(concat);
        const Tensor res1 = ops::add(x, attn_out);
        LayerNorm::Cache scratch;
        const Tensor y = blk.ln1_.forward(res1, scratch);
        const Tensor hidden = reluForward(blk.fc1_.forward(y));
        const Tensor res2 = ops::add(y, blk.fc2_.forward(hidden));
        x = blk.ln2_.forward(res2, scratch);
    }

    const Tensor logits = model_.lm_head_.forward(x);
    // Log-softmax over the vocabulary.
    float m = logits[0];
    for (std::size_t i = 0; i < logits.numel(); ++i)
        m = std::max(m, logits[i]);
    double denom = 0.0;
    for (std::size_t i = 0; i < logits.numel(); ++i)
        denom += std::exp(logits[i] - m);
    std::vector<double> logprobs(logits.numel());
    for (std::size_t i = 0; i < logits.numel(); ++i)
        logprobs[i] = logits[i] - m - std::log(denom);
    return logprobs;
}

void
GenerativeRunner::pruneCaches(std::vector<Beam>& beams,
                              const PruningPolicy& policy,
                              std::size_t context_len,
                              std::size_t prompt_len)
{
    const std::size_t layers = model_.blocks_.size();

    // Head pruning: shrink the shared alive-head set toward the
    // schedule-implied keep fraction.
    if (policy.head_pruning) {
        const auto target = static_cast<std::size_t>(std::ceil(
            static_cast<double>(model_.cfg_.heads) *
            head_sched_.keepFraction()));
        if (heads_alive_.size() > std::max<std::size_t>(target, 1)) {
            CascadeHeadPruner pruner(model_.cfg_.heads);
            // Re-derive the alive set, then prune to the target count.
            std::vector<float> scores(model_.cfg_.heads, -1.0f);
            for (std::size_t h : heads_alive_)
                scores[h] = head_acc_.score(h);
            heads_alive_ = topkKeepOrder(scores, target);
        }
    }

    if (!policy.token_pruning)
        return;

    // Cascade across layers: positions dropped at layer l stay dropped
    // for every deeper layer. Only prompt positions are prunable — the
    // generated tokens differ per beam and are always kept.
    std::vector<bool> dropped(context_len, false);
    double keep_frac = 1.0;
    for (std::size_t l = 0; l < layers; ++l) {
        keep_frac *= 1.0 - token_sched_.ratioAt(l);
        const auto target = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(static_cast<double>(context_len) *
                             keep_frac)));

        // Current alive prompt positions at this layer (beam 0 is the
        // reference; prompt rows are identical across beams).
        LayerCache& ref = beams.front().caches[l];
        std::vector<std::size_t> alive_prompt;
        std::size_t gen_rows = 0;
        for (std::size_t pos : ref.pos) {
            if (pos < prompt_len) {
                if (!dropped[pos])
                    alive_prompt.push_back(pos);
            } else {
                ++gen_rows;
            }
        }
        if (alive_prompt.size() + gen_rows <= target)
            continue;
        const std::size_t keep_prompt = std::max<std::size_t>(
            1, target > gen_rows ? target - gen_rows : 1);
        if (alive_prompt.size() <= keep_prompt)
            continue;

        std::vector<float> scores(alive_prompt.size());
        for (std::size_t i = 0; i < alive_prompt.size(); ++i)
            scores[i] = token_acc_.score(alive_prompt[i]);
        const auto kept_idx = topkKeepOrder(scores, keep_prompt);
        std::vector<bool> keep_pos(context_len, false);
        for (std::size_t i : kept_idx)
            keep_pos[alive_prompt[i]] = true;
        for (std::size_t pos : alive_prompt)
            if (!keep_pos[pos])
                dropped[pos] = true;

        // Physically erase dropped rows from layer l (and, via the
        // running `dropped` set, from all deeper layers) in every beam.
        for (Beam& beam : beams) {
            for (std::size_t ll = l; ll < layers; ++ll) {
                LayerCache& c = beam.caches[ll];
                LayerCache pruned;
                for (std::size_t r = 0; r < c.pos.size(); ++r) {
                    if (c.pos[r] < prompt_len && dropped[c.pos[r]])
                        continue;
                    pruned.k.push_back(std::move(c.k[r]));
                    pruned.v.push_back(std::move(c.v[r]));
                    pruned.pos.push_back(c.pos[r]);
                    if (!c.kq.empty())
                        pruned.kq.push_back(std::move(c.kq[r]));
                }
                c = std::move(pruned);
            }
        }
    }
}

GenerateResult
GenerativeRunner::generate(const std::vector<std::size_t>& prompt,
                           const GenerateOptions& opts)
{
    SPATTEN_ASSERT(!prompt.empty(), "empty prompt");
    SPATTEN_ASSERT(opts.beam_width >= 1, "beam width must be >= 1");
    const auto& cfg = model_.cfg_;
    SPATTEN_ASSERT(prompt.size() + opts.max_new_tokens <= cfg.max_len,
                   "generation exceeds max_len %zu", cfg.max_len);

    const std::size_t layers = model_.blocks_.size();
    flat_rows_ = total_rows_ = lsb_refetches_ = 0.0;
    token_acc_.reset(prompt.size() + opts.max_new_tokens);
    head_acc_.reset(cfg.heads);
    heads_alive_.resize(cfg.heads);
    for (std::size_t h = 0; h < cfg.heads; ++h)
        heads_alive_[h] = h;
    token_sched_ = opts.policy.token_pruning
                       ? makeTokenSchedule(layers,
                                           opts.policy.token_avg_ratio)
                       : PruningSchedule::disabled(layers);
    head_sched_ = opts.policy.head_pruning
                      ? makeHeadSchedule(layers,
                                         opts.policy.head_avg_ratio)
                      : PruningSchedule::disabled(layers);

    // Summarize the prompt into beam 0's caches.
    Beam seed;
    seed.caches.resize(layers);
    std::vector<double> last_logprobs;
    for (std::size_t i = 0; i < prompt.size(); ++i)
        last_logprobs = stepToken(seed, prompt[i], i, opts.policy);

    struct Hypothesis
    {
        Beam beam;
        std::vector<double> logprobs;
    };
    std::vector<Hypothesis> beams;
    beams.push_back({std::move(seed), std::move(last_logprobs)});

    for (std::size_t step = 0; step < opts.max_new_tokens; ++step) {
        const std::size_t position = prompt.size() + step;

        // Expand every beam with its top-width candidates.
        struct Cand
        {
            std::size_t beam_idx;
            std::size_t token;
            double logprob;
        };
        std::vector<Cand> cands;
        for (std::size_t b = 0; b < beams.size(); ++b) {
            const auto& lp = beams[b].logprobs;
            std::vector<std::size_t> order(lp.size());
            for (std::size_t i = 0; i < lp.size(); ++i)
                order[i] = i;
            std::partial_sort(order.begin(),
                              order.begin() + static_cast<long>(std::min(
                                  opts.beam_width, order.size())),
                              order.end(),
                              [&](std::size_t a, std::size_t c) {
                                  return lp[a] > lp[c];
                              });
            for (std::size_t i = 0;
                 i < std::min(opts.beam_width, order.size()); ++i) {
                cands.push_back({b, order[i],
                                 beams[b].beam.logprob + lp[order[i]]});
            }
        }
        std::sort(cands.begin(), cands.end(),
                  [](const Cand& a, const Cand& b) {
                      return a.logprob > b.logprob;
                  });
        cands.resize(std::min(cands.size(), opts.beam_width));

        // Materialize the surviving hypotheses (copying caches).
        std::vector<Hypothesis> next;
        for (const Cand& c : cands) {
            Hypothesis h;
            h.beam = beams[c.beam_idx].beam; // cache copy
            h.beam.tokens.push_back(c.token);
            h.beam.logprob = c.logprob;
            h.logprobs =
                stepToken(h.beam, c.token, position, opts.policy);
            next.push_back(std::move(h));
        }
        beams = std::move(next);

        // Cascade pruning of the shared prompt context.
        std::vector<Beam> all;
        all.reserve(beams.size());
        for (auto& h : beams)
            all.push_back(std::move(h.beam));
        pruneCaches(all, opts.policy, position + 1, prompt.size());
        for (std::size_t b = 0; b < beams.size(); ++b)
            beams[b].beam = std::move(all[b]);
    }

    GenerateResult res;
    const Hypothesis& best = beams.front();
    res.tokens = best.beam.tokens;
    res.logprob = best.beam.logprob;
    res.heads_alive = heads_alive_.size();
    const std::size_t ctx = prompt.size() + opts.max_new_tokens;
    res.final_keys_frac =
        static_cast<double>(best.beam.caches.back().pos.size()) /
        static_cast<double>(ctx);
    res.lsb_fraction = total_rows_ > 0 ? flat_rows_ / total_rows_ : 0.0;
    res.lsb_refetches = lsb_refetches_;
    return res;
}

} // namespace spatten
