/**
 * @file
 * MSB/LSB bit-plane splitting for progressive quantization (§III-D).
 *
 * SpAtten stores the MSBs of quantized QKV contiguously in DRAM and the
 * LSBs contiguously elsewhere, so the fetcher can eagerly fetch MSBs only
 * and fetch LSBs on demand. The paper's MSB+LSB settings are 4+4, 6+4,
 * 8+4, 10+4 and 12+4 bits.
 *
 * This module provides the functional model: split a full-precision code
 * into planes, reconstruct from MSBs only (truncated), or from MSB+LSB
 * (exact), mirroring the on-chip bitwidth converter.
 */
#ifndef SPATTEN_QUANT_BITPLANE_HPP
#define SPATTEN_QUANT_BITPLANE_HPP

#include "quant/linear_quant.hpp"

namespace spatten {

/** One of the paper's five MSB+LSB storage settings. */
struct BitplaneSetting
{
    int msb_bits = 8; ///< Bits fetched eagerly.
    int lsb_bits = 4; ///< Bits fetched only on low-confidence recompute.

    int totalBits() const { return msb_bits + lsb_bits; }
};

/** The five settings evaluated in the paper. */
extern const BitplaneSetting kPaperBitplaneSettings[5];

/**
 * A quantized tensor split into MSB and LSB planes. The full code is
 * (msb << lsb_bits) | lsb with lsb held as unsigned low bits.
 */
struct BitplaneTensor
{
    Shape shape;
    BitplaneSetting setting;
    float scale = 1.0f;
    std::vector<std::int32_t> msb; ///< Signed high planes.
    std::vector<std::int32_t> lsb; ///< Unsigned low planes in [0, 2^lsb).

    std::size_t numel() const { return msb.size(); }

    /** Bytes occupied by the MSB plane in DRAM (bit-packed). */
    std::size_t msbPlaneBytes() const;
    /** Bytes occupied by the LSB plane in DRAM (bit-packed). */
    std::size_t lsbPlaneBytes() const;
};

namespace quant {

/**
 * Recombine an MSB plane code with its unsigned LSB bits into the full
 * signed code. The shift happens in the unsigned domain because
 * left-shifting a negative value is undefined behavior pre-C++20 (the
 * UBSan CI job enforces this); the round-trip through uint32 is
 * value-preserving two's complement. The single definition of the
 * recombination — every reconstruction site must use it.
 */
inline std::int32_t
reconstructCode(std::int32_t msb, std::int32_t lsb, int lsb_bits)
{
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(msb)
                                     << static_cast<unsigned>(lsb_bits)) |
           lsb;
}

/**
 * Quantize @p x to setting.totalBits() and split into bit planes.
 */
BitplaneTensor splitPlanes(const Tensor& x, const BitplaneSetting& setting);

/** Split an existing full-precision quantized tensor into planes. */
BitplaneTensor splitPlanes(const QuantizedTensor& qt, int lsb_bits);

/**
 * Reconstruct using MSBs only: the LSB plane is dropped, i.e. the code is
 * truncated toward negative infinity. This is what the datapath computes
 * on the eager first pass.
 */
Tensor reconstructMsbOnly(const BitplaneTensor& bp);

/** Exact reconstruction from MSB+LSB planes (the recompute pass). */
Tensor reconstructFull(const BitplaneTensor& bp);

/**
 * Functional model of the on-chip bitwidth converter (§IV-D): widen a code
 * of @p from_bits to @p to_bits (sign-extended, left-aligned scale
 * preserved by the caller's dequant scale). @pre from_bits <= to_bits.
 */
std::int32_t convertBitwidth(std::int32_t code, int from_bits, int to_bits);

} // namespace quant
} // namespace spatten

#endif // SPATTEN_QUANT_BITPLANE_HPP
