/**
 * @file
 * The SpAtten policy knobs expressed as stage-graph transforms.
 *
 * Cascade token/head pruning and progressive quantization used to be
 * inline arithmetic inside the monolithic pipeline loop; here each is a
 * GraphTransform that rewrites the per-request ExecutionContext between
 * layers: prepare() publishes the layer's pruning ratios and the pass's
 * quantization plane widths to the stages, apply() shrinks the alive
 * token/head counts after the layer's top-k pass.
 */
#ifndef SPATTEN_CORE_GRAPH_TRANSFORMS_HPP
#define SPATTEN_CORE_GRAPH_TRANSFORMS_HPP

#include <memory>
#include <vector>

#include "core/model_spec.hpp"
#include "core/schedule.hpp"
#include "sim/stage_graph.hpp"

namespace spatten {

/**
 * Cascade token pruning (§III-A): after each layer the cumulative-
 * importance top-k keeps a schedule-driven fraction of the alive tokens,
 * and pruned tokens stay pruned in all later layers.
 */
class CascadeTokenPruneTransform : public GraphTransform
{
  public:
    explicit CascadeTokenPruneTransform(PruningSchedule schedule);
    std::string name() const override { return "cascade_token_prune"; }
    void prepare(ExecutionContext& ctx) override;
    void apply(ExecutionContext& ctx) override;

  private:
    PruningSchedule schedule_;
};

/** Cascade head pruning (§III-B), same shape as token pruning. */
class CascadeHeadPruneTransform : public GraphTransform
{
  public:
    explicit CascadeHeadPruneTransform(PruningSchedule schedule);
    std::string name() const override { return "cascade_head_prune"; }
    void prepare(ExecutionContext& ctx) override;
    void apply(ExecutionContext& ctx) override;

  private:
    PruningSchedule schedule_;
};

/**
 * Progressive quantization (§III-D) as a plane-state rewrite: the
 * summarization stage is compute-bound, so it fetches the full static
 * width once; the generation stage fetches the MSB plane eagerly and
 * refetches the LSB plane for lsb_fraction of the queries.
 */
class ProgressiveQuantTransform : public GraphTransform
{
  public:
    std::string name() const override { return "progressive_quant"; }
    void prepare(ExecutionContext& ctx) override;
    void apply(ExecutionContext&) override {}
};

/**
 * Build the transform chain for @p policy over @p model: pruning
 * schedules from the policy ratios, plus the quantization plane rewrite.
 */
std::vector<std::unique_ptr<GraphTransform>>
makePolicyTransforms(const ModelSpec& model, const PruningPolicy& policy);

/**
 * Seed an ExecutionContext from a workload + policy pair (static shape,
 * plane widths, policy mirrors). Hardware-config-dependent fields
 * (max_context, sram_tokens) are set by the graph assembly, and
 * pass-dependent fields (pass_queries, alive counts, generation flag)
 * by the pass driver — callers other than AttentionGraph must fill
 * max_context themselves or planeBase sizes slots for the 1024 default.
 */
ExecutionContext makeExecutionContext(const WorkloadSpec& workload,
                                      const PruningPolicy& policy,
                                      std::uint64_t request_seed = kDefaultRequestSeed);

} // namespace spatten

#endif // SPATTEN_CORE_GRAPH_TRANSFORMS_HPP
