#include "hat/hat_search.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/prng.hpp"

namespace spatten {

const std::vector<std::size_t>&
hatEmbedChoices()
{
    static const std::vector<std::size_t> v{512, 640, 768};
    return v;
}

const std::vector<std::size_t>&
hatFfnChoices()
{
    static const std::vector<std::size_t> v{512, 1024, 2048, 3072};
    return v;
}

const std::vector<std::size_t>&
hatLayerChoices()
{
    static const std::vector<std::size_t> v{1, 2, 3, 4, 5, 6};
    return v;
}

double
proxyBleu(const HatCandidate& c)
{
    // Capacity score with diminishing returns per dimension. Weights
    // reflect WMT ablations: depth and width matter more than FFN size.
    // Calibrated so (512, 2048, 6) ~ 27.3 (Transformer-Base) and
    // (1024, 4096, 6) ~ 28.4 (Transformer-Big).
    const double e = std::log2(static_cast<double>(c.embed_dim) / 512.0);
    const double f = std::log2(static_cast<double>(c.ffn_dim) / 512.0);
    const double l = static_cast<double>(c.layers);
    const double capacity =
        0.9 * e + 0.20 * f + 0.9 * std::log2(1.0 + l);
    return 29.2 - 18.9 * std::exp(-0.786 * capacity);
}

ModelSpec
hatModelSpec(const HatCandidate& c)
{
    SPATTEN_ASSERT(c.embed_dim % 64 == 0, "embed dim %zu not head-aligned",
                   c.embed_dim);
    ModelSpec m;
    m.name = strfmt("hat-e%zu-f%zu-l%zu", c.embed_dim, c.ffn_dim,
                    c.layers);
    m.num_layers = c.layers;
    m.d_head = 64;
    m.num_heads = c.embed_dim / 64;
    m.ffn_hidden_override = c.ffn_dim;
    return m;
}

HatEvaluated
evaluateCandidate(const HatCandidate& c, const SpAttenConfig& hw,
                  const E2eConfig& e2e)
{
    HatEvaluated ev;
    ev.cand = c;
    ev.bleu = proxyBleu(c);

    // Probe workload: WMT'14-style sentence translation — ~30-token
    // source summarized, ~30 tokens generated.
    WorkloadSpec w;
    w.name = "wmt14-probe";
    w.model = hatModelSpec(c);
    w.summarize_len = 30;
    w.generate_len = 30;

    PruningPolicy policy;
    policy.token_avg_ratio = 0.05; // short sentences: light pruning
    policy.head_avg_ratio = 0.0;
    policy.local_v_ratio = 0.2;
    policy.pq.enabled = true;
    policy.pq.setting = {8, 4};
    policy.lsb_fraction = 0.059;

    SpAttenE2e engine(hw, e2e);
    const E2eResult r = engine.run(w, policy);
    ev.latency_ms = r.totalSeconds() * 1e3;
    ev.attn_flops = r.attention.attention_flops;
    ev.fc_flops = r.fc_flops;
    return ev;
}

namespace {

HatCandidate
randomCandidate(Prng& prng)
{
    HatCandidate c;
    c.embed_dim = hatEmbedChoices()[prng.below(hatEmbedChoices().size())];
    c.ffn_dim = hatFfnChoices()[prng.below(hatFfnChoices().size())];
    c.layers = hatLayerChoices()[prng.below(hatLayerChoices().size())];
    return c;
}

HatCandidate
mutate(const HatCandidate& c, Prng& prng, double prob)
{
    HatCandidate out = c;
    if (prng.chance(prob))
        out.embed_dim =
            hatEmbedChoices()[prng.below(hatEmbedChoices().size())];
    if (prng.chance(prob))
        out.ffn_dim = hatFfnChoices()[prng.below(hatFfnChoices().size())];
    if (prng.chance(prob))
        out.layers =
            hatLayerChoices()[prng.below(hatLayerChoices().size())];
    return out;
}

} // namespace

std::vector<HatEvaluated>
searchFrontier(const std::vector<double>& latency_budgets_ms,
               const SpAttenConfig& hw, const E2eConfig& e2e,
               HatSearchConfig cfg)
{
    Prng prng(cfg.seed);
    std::vector<HatEvaluated> frontier;
    for (double budget : latency_budgets_ms) {
        // Evolutionary search under this latency budget.
        std::vector<HatEvaluated> pop;
        for (std::size_t i = 0; i < cfg.population; ++i)
            pop.push_back(
                evaluateCandidate(randomCandidate(prng), hw, e2e));
        const auto fitness = [&](const HatEvaluated& ev) {
            // Hard budget: infeasible candidates rank below everything.
            return ev.latency_ms <= budget ? ev.bleu
                                           : ev.bleu - 100.0 -
                                                 (ev.latency_ms - budget);
        };
        for (std::size_t g = 0; g < cfg.generations; ++g) {
            std::sort(pop.begin(), pop.end(),
                      [&](const HatEvaluated& a, const HatEvaluated& b) {
                          return fitness(a) > fitness(b);
                      });
            pop.resize(cfg.population / 2); // keep the fit half
            const std::size_t parents = pop.size();
            while (pop.size() < cfg.population) {
                const HatCandidate child = mutate(
                    pop[prng.below(parents)].cand, prng, cfg.mutate_prob);
                pop.push_back(evaluateCandidate(child, hw, e2e));
            }
        }
        std::sort(pop.begin(), pop.end(),
                  [&](const HatEvaluated& a, const HatEvaluated& b) {
                      return fitness(a) > fitness(b);
                  });
        frontier.push_back(pop.front());
    }
    return frontier;
}

} // namespace spatten
