#include "serve/continuous_batch_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <limits>
#include <memory>
#include <numeric>
#include <thread>

#include "accel/decode_session.hpp"
#include "common/logging.hpp"

namespace spatten {

namespace {

/** One in-flight request on one accelerator. */
struct ActiveSession
{
    std::size_t idx = 0; ///< Position in the trace (report index).
    std::unique_ptr<DecodeSession> session;
};

/** One simulated accelerator's private scheduling state. */
struct AccelState
{
    double clock_s = 0; ///< Simulated time cursor.
    double busy_s = 0;  ///< Time spent serving (vs idle waiting).
    std::vector<ActiveSession> active; ///< In admission order.
    std::deque<std::size_t> queue;     ///< Round-robin private feed.
};

/** One session step to simulate this iteration. */
struct StepJob
{
    DecodeSession* session = nullptr;
    bool do_prefill = false;
    double seconds = 0; ///< Output: simulated step cost.
};

/**
 * Persistent helper-thread pool for the per-iteration session steps.
 *
 * A scheduler run has one iteration per prefill/decode round — hundreds
 * for a modest trace — and each step simulates only microseconds of
 * work, so spawning threads per iteration would cost more than it
 * saves. The pool keeps num_threads-1 helpers parked on a condition
 * variable; run() publishes a job batch (a "generation"), drains it
 * together with the helpers through an atomic cursor, and returns only
 * after every helper has finished the generation (which also makes the
 * next cursor reset race-free). Sessions are independent, each job
 * executes exactly once,
 * and outputs land in caller-fixed job slots, so the result is
 * identical at any thread count — parallelism here is pure wall-clock
 * speedup.
 */
class StepPool
{
  public:
    explicit StepPool(std::size_t num_threads)
    {
        const std::size_t helpers = num_threads > 1 ? num_threads - 1 : 0;
        helpers_.reserve(helpers);
        for (std::size_t i = 0; i < helpers; ++i)
            helpers_.emplace_back([this] { helperLoop(); });
    }

    ~StepPool()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        wake_cv_.notify_all();
        for (auto& t : helpers_)
            t.join();
    }

    /** Execute every job once; blocks until all are complete. */
    void run(std::vector<StepJob>& jobs)
    {
        if (helpers_.empty() || jobs.size() <= 1) {
            for (auto& job : jobs)
                step(job);
            return;
        }
        {
            std::lock_guard<std::mutex> lk(m_);
            // Every helper finished the previous generation before the
            // previous run() returned, so resetting the shared cursor
            // is race-free.
            jobs_ = &jobs;
            cursor_.store(0, std::memory_order_relaxed);
            done_ = 0;
            ++generation_;
        }
        wake_cv_.notify_all();
        drain(jobs); // The caller is a worker too.
        // Full rendezvous: wait until every helper has drained *this*
        // generation. Waiting merely for parked helpers would let a
        // slow helper that never started the generation park-count as
        // done and then dereference jobs_ after it was reset.
        std::unique_lock<std::mutex> lk(m_);
        idle_cv_.wait(lk, [&] { return done_ == helpers_.size(); });
        jobs_ = nullptr;
    }

  private:
    static void step(StepJob& job)
    {
        job.seconds = job.do_prefill ? job.session->prefill()
                                     : job.session->decodeStep();
    }

    void drain(std::vector<StepJob>& jobs)
    {
        for (;;) {
            const std::size_t i =
                cursor_.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            step(jobs[i]);
        }
    }

    void helperLoop()
    {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(m_);
        for (;;) {
            wake_cv_.wait(lk,
                          [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            std::vector<StepJob>& jobs = *jobs_;
            lk.unlock();
            drain(jobs);
            lk.lock();
            // Completing under the mutex publishes this helper's step
            // results to run()'s post-wait reads.
            ++done_;
            if (done_ == helpers_.size())
                idle_cv_.notify_one();
        }
    }

    std::vector<std::thread> helpers_;
    std::mutex m_;
    std::condition_variable wake_cv_; ///< Helpers wait for a generation.
    std::condition_variable idle_cv_; ///< run() waits for helpers to park.
    std::vector<StepJob>* jobs_ = nullptr;
    std::atomic<std::size_t> cursor_{0};
    std::uint64_t generation_ = 0;
    std::size_t done_ = 0; ///< Helpers finished with this generation.
    bool stop_ = false;
};

} // namespace

ContinuousBatchScheduler::ContinuousBatchScheduler(
    SpAttenConfig cfg, ContinuousBatchConfig sched)
    : cfg_(cfg), sched_(sched)
{
    SPATTEN_ASSERT(sched_.num_accelerators >= 1, "empty accelerator pool");
    SPATTEN_ASSERT(sched_.max_active >= 1, "batch width must be >= 1");
    if (sched_.num_threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        sched_.num_threads = hw > 0 ? hw : 1;
    }
    // A generation never holds more than max_active jobs, so extra
    // helpers would only add rendezvous cost on wide machines.
    sched_.num_threads = std::min(sched_.num_threads, sched_.max_active);
}

ServeReport
ContinuousBatchScheduler::run(const std::vector<TracedRequest>& trace)
{
    const std::size_t n = trace.size();
    const std::size_t num_accels = sched_.num_accelerators;

    ServeReport rep;
    rep.requests.resize(n);
    rep.accel_busy_s.assign(num_accels, 0.0);
    rep.accel_util.assign(num_accels, 0.0);
    rep.accel_requests.assign(num_accels, 0);
    if (n == 0)
        return rep;

    for (std::size_t i = 0; i < n; ++i) {
        rep.requests[i].id = trace[i].id;
        rep.requests[i].arrival_s = trace[i].arrival_s;
    }

    // Canonical admission order: by (arrival, id), independent of the
    // trace vector's ordering, so the schedule is a pure function of the
    // trace's *content*.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (trace[a].arrival_s != trace[b].arrival_s)
                             return trace[a].arrival_s < trace[b].arrival_s;
                         return trace[a].id < trace[b].id;
                     });

    std::vector<AccelState> accels(num_accels);
    std::deque<std::size_t> shared; // Least-loaded shared FIFO.
    for (std::size_t k = 0; k < n; ++k) {
        if (sched_.shard == ShardPolicy::RoundRobin)
            accels[k % num_accels].queue.push_back(order[k]);
        else
            shared.push_back(order[k]);
    }
    const auto feedQueue = [&](AccelState& a) -> std::deque<std::size_t>& {
        return sched_.shard == ShardPolicy::RoundRobin ? a.queue : shared;
    };

    constexpr double kInf = std::numeric_limits<double>::infinity();
    // The earliest simulated time at which an accelerator can do work:
    // now if it has an active batch, the head arrival of its feed queue
    // if it is idle, +inf if it has nothing left to do.
    const auto nextEventTime = [&](AccelState& a) {
        if (!a.active.empty())
            return a.clock_s;
        const auto& q = feedQueue(a);
        if (q.empty())
            return kInf;
        return std::max(a.clock_s, trace[q.front()].arrival_s);
    };

    std::size_t finished = 0;
    std::vector<StepJob> jobs;
    StepPool pool(sched_.num_threads);
    while (finished < n) {
        // ---- Pick the accelerator with the earliest next event ----
        // (ties break to the lowest index, keeping the loop an exact
        // discrete-event simulation: iterations are processed in global
        // simulated-time order, so least-loaded pulls stay FIFO.)
        std::size_t best = num_accels;
        double best_t = kInf;
        for (std::size_t a = 0; a < num_accels; ++a) {
            const double t = nextEventTime(accels[a]);
            if (t < best_t) {
                best_t = t;
                best = a;
            }
        }
        SPATTEN_ASSERT(best < num_accels,
                       "scheduler stalled with %zu unfinished requests",
                       n - finished);
        AccelState& accel = accels[best];
        accel.clock_s = std::max(accel.clock_s, best_t);

        // ---- Admit arrived requests into free batch slots (FIFO) ----
        auto& queue = feedQueue(accel);
        while (accel.active.size() < sched_.max_active && !queue.empty() &&
               trace[queue.front()].arrival_s <= accel.clock_s) {
            const std::size_t idx = queue.front();
            queue.pop_front();
            ServedRequest& r = rep.requests[idx];
            r.accel = static_cast<int>(best);
            r.admit_s = accel.clock_s;
            r.phase = RequestPhase::Prefill;
            ++rep.accel_requests[best];
            accel.active.push_back(
                {idx, std::make_unique<DecodeSession>(
                          cfg_, trace[idx].workload, trace[idx].policy,
                          trace[idx].seed)});
        }
        SPATTEN_ASSERT(!accel.active.empty(),
                       "selected an accelerator with no admissible work");

        // ---- One iteration: a step per member, in parallel on the
        // host, applied in admission order ----
        jobs.clear();
        jobs.reserve(accel.active.size());
        for (auto& m : accel.active)
            jobs.push_back(
                {m.session.get(), !m.session->prefilled(), 0.0});
        pool.run(jobs);

        double t = accel.clock_s;
        for (std::size_t i = 0; i < accel.active.size(); ++i) {
            ActiveSession& m = accel.active[i];
            ServedRequest& r = rep.requests[m.idx];
            t += jobs[i].seconds;
            r.service_seconds += jobs[i].seconds;
            if (jobs[i].do_prefill) {
                r.phase = RequestPhase::Decoding;
            } else {
                r.token_times_s.push_back(t);
                ++r.tokens;
                if (r.first_token_s < 0)
                    r.first_token_s = t;
            }
            if (m.session->done()) {
                // A 0-token request's "first token" is its prefill
                // completion (the classification-style response).
                if (r.first_token_s < 0)
                    r.first_token_s = t;
                r.finish_s = t;
                r.phase = RequestPhase::Finished;
                r.kv_trace = m.session->kvTrace();
                r.sim = m.session->finalize();
                ++finished;
            }
        }
        accel.busy_s += t - accel.clock_s;
        accel.clock_s = t;
        accel.active.erase(
            std::remove_if(accel.active.begin(), accel.active.end(),
                           [](const ActiveSession& m) {
                               return m.session->done();
                           }),
            accel.active.end());
    }

    // ---- Aggregate ----
    std::vector<double> ttfts, itls;
    ttfts.reserve(n);
    double dram_bytes = 0, dram_bytes_dense = 0;
    for (const ServedRequest& r : rep.requests) {
        rep.makespan_s = std::max(rep.makespan_s, r.finish_s);
        rep.total_tokens += r.tokens;
        ttfts.push_back(r.ttftSeconds());
        for (double g : r.interTokenGaps())
            itls.push_back(g);
        rep.total_cycles += static_cast<double>(r.sim.cycles);
        rep.total_energy_j += r.sim.energy.totalJ();
        rep.total_flops += r.sim.attention_flops;
        dram_bytes += r.sim.dram_bytes;
        dram_bytes_dense += r.sim.dram_bytes_dense;
        const bool good =
            r.ttftSeconds() <= sched_.slo_ttft_s &&
            (r.tokens < 2 || r.avgItlSeconds() <= sched_.slo_itl_s);
        rep.slo_met += good ? 1 : 0;
    }
    std::sort(ttfts.begin(), ttfts.end());
    std::sort(itls.begin(), itls.end());
    rep.ttft_p50_s = sortedQuantile(ttfts, 0.50);
    rep.ttft_p99_s = sortedQuantile(ttfts, 0.99);
    rep.itl_p50_s = sortedQuantile(itls, 0.50);
    rep.itl_p99_s = sortedQuantile(itls, 0.99);
    if (rep.makespan_s > 0) {
        rep.throughput_rps = static_cast<double>(n) / rep.makespan_s;
        rep.goodput_rps =
            static_cast<double>(rep.slo_met) / rep.makespan_s;
        rep.tokens_per_s =
            static_cast<double>(rep.total_tokens) / rep.makespan_s;
    }
    for (std::size_t a = 0; a < num_accels; ++a) {
        rep.accel_busy_s[a] = accels[a].busy_s;
        rep.accel_util[a] = rep.makespan_s > 0
                                ? accels[a].busy_s / rep.makespan_s
                                : 0.0;
    }
    rep.dram_reduction =
        dram_bytes > 0 ? dram_bytes_dense / dram_bytes : 1.0;
    return rep;
}

} // namespace spatten
