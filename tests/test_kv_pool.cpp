/// Property tests for the paged ref-counted KV block allocator
/// (serve/kv_pool.hpp): shared-prefix mapping charges shared blocks
/// once, refcounts never underflow, hash collisions fall back to
/// private blocks, copy-on-write keeps the cached originals intact,
/// cold-cache eviction is LRU and never lets usage exceed the budget,
/// release/double-release and byte-size overflow assert instead of
/// silently corrupting the ledger. With the DRAM cold tier configured,
/// the demotion/eviction order is pinned as a deterministic function
/// of the release order — within-release ties resolve chain-head-first
/// — by a 4000-op random run against an exact shadow model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "serve/kv_pool.hpp"

namespace spatten {
namespace {

/// 4-layer, 4-head, 64-dim model: kvBytesPerToken = 2*4*4*64*2 = 4096,
/// so a 16-token block is 64 KiB — easy mental math for the budgets.
ModelSpec
tinyModel()
{
    return {"tiny", 4, 4, 64, 4};
}

constexpr std::uint64_t kBlockBytes = 16ull * 4096; // 16-token block.

/// Distinct deterministic prompt content per (stream, length).
std::vector<std::uint64_t>
prompt(std::uint64_t stream, std::size_t tokens)
{
    std::vector<std::uint64_t> p;
    p.reserve(tokens);
    for (std::size_t i = 0; i < tokens; ++i)
        p.push_back(stream * 0x100000001ULL + i);
    return p;
}

TEST(KvPoolPrefix, SharedBlocksChargedOnceAndRefCounted)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    const auto a = prompt(1, 64); // 4 complete blocks.

    const auto r0 = pool.tryReservePrefix(0, m, a);
    ASSERT_TRUE(r0.ok);
    EXPECT_EQ(r0.cached_tokens, 0u) << "cold cache: nothing to map";
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);
    EXPECT_EQ(pool.sharedBlockRefs(0),
              (std::vector<std::uint32_t>{1, 1, 1, 1}));

    const auto r1 = pool.tryReservePrefix(1, m, a);
    ASSERT_TRUE(r1.ok);
    EXPECT_EQ(r1.cached_tokens, 64u);
    EXPECT_EQ(r1.shared_bytes, 4 * kBlockBytes);
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes)
        << "a full prefix hit charges no new bytes";
    EXPECT_EQ(pool.sharedBlockRefs(0),
              (std::vector<std::uint32_t>{2, 2, 2, 2}));

    pool.release(0);
    EXPECT_EQ(pool.sharedBlockRefs(1),
              (std::vector<std::uint32_t>{1, 1, 1, 1}));
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);
    pool.release(1);
    // Last holder gone: blocks stay resident as reclaimable cold cache.
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);
    EXPECT_EQ(pool.coldBytes(), 4 * kBlockBytes);
    EXPECT_EQ(pool.residentRequests(), 0u);
}

TEST(KvPoolPrefix, PartialTailBlockStaysPrivate)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    const auto a = prompt(2, 40); // 2 complete blocks + 8-token tail.

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    EXPECT_EQ(pool.usedBytes(), 3 * kBlockBytes);
    EXPECT_EQ(pool.cachedBlocks(), 2u) << "only complete blocks cached";

    const auto r1 = pool.tryReservePrefix(1, m, a);
    ASSERT_TRUE(r1.ok);
    EXPECT_EQ(r1.cached_tokens, 32u) << "tail recomputed privately";
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes)
        << "shared 2 + two private tails";
    pool.release(0);
    pool.release(1);
}

TEST(KvPoolPrefix, ColdCacheHitThenLruEviction)
{
    const ModelSpec m = tinyModel();
    KvPool pool({6 * kBlockBytes, 16});
    const auto a = prompt(3, 64); // 4 blocks.

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    pool.release(0);
    EXPECT_EQ(pool.coldBytes(), 4 * kBlockBytes);

    // A cold hit revives the blocks instead of re-prefilling.
    const auto r1 = pool.tryReservePrefix(1, m, a);
    ASSERT_TRUE(r1.ok);
    EXPECT_EQ(r1.cached_tokens, 64u);
    EXPECT_EQ(pool.coldBytes(), 0u);
    pool.release(1);

    // A 6-block private reservation needs the cold blocks' bytes:
    // they are evicted (LRU) rather than blocking the admission.
    EXPECT_TRUE(pool.tryReserve(2, m, 96));
    EXPECT_EQ(pool.usedBytes(), 6 * kBlockBytes);
    EXPECT_EQ(pool.evictedBlocks(), 4u);
    EXPECT_EQ(pool.cachedBlocks(), 0u);
    // The prefix is gone from the cache: a re-reservation is cold.
    pool.release(2);
    const auto r3 = pool.tryReservePrefix(3, m, a);
    ASSERT_TRUE(r3.ok);
    EXPECT_EQ(r3.cached_tokens, 0u);
    pool.release(3);
}

TEST(KvPoolPrefix, HashCollisionsFallBackToPrivateBlocks)
{
    const ModelSpec m = tinyModel();
    // A 1-bit chain hash: at most two distinct index keys can ever
    // exist, so among any three distinct single-block prompts at
    // least one collides at registration and must fall back private.
    KvPool pool({0, 16, 2, 1});
    std::size_t id = 0;
    std::size_t fallbacks = 0;
    for (std::uint64_t stream = 10; stream < 13; ++stream) {
        const auto p = prompt(stream, 16);
        const std::size_t cached_before = pool.cachedBlocks();
        const auto r = pool.tryReservePrefix(id++, m, p);
        ASSERT_TRUE(r.ok);
        EXPECT_EQ(r.cached_tokens, 0u)
            << "distinct content must never map cached blocks, even "
               "under a colliding chain hash";
        if (pool.cachedBlocks() == cached_before)
            ++fallbacks; // Key occupied: block stayed anonymous.
    }
    EXPECT_GE(fallbacks, 1u) << "pigeonhole: 3 prompts, 2 hash keys";
    EXPECT_LE(pool.cachedBlocks(), 2u);
    // Every reservation is fully served regardless of the collisions.
    EXPECT_EQ(pool.usedBytes(), 3 * kBlockBytes);
    for (std::size_t i = 0; i < id; ++i)
        pool.release(i);
}

TEST(KvPoolPrefix, CopyOnWriteLeavesCachedOriginalsIntact)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    const auto a = prompt(4, 64); // 4 blocks.

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    ASSERT_TRUE(pool.tryReservePrefix(1, m, a).ok);
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);

    // Cascade pruning shrinks request 1 to 40 tokens: its content
    // diverges from the cached prefix, so the 3 still-needed blocks
    // are copied private and the references dropped.
    EXPECT_TRUE(pool.tryResize(1, m, 40));
    EXPECT_EQ(pool.cowCopiedBlocks(), 3u);
    EXPECT_TRUE(pool.sharedBlockRefs(1).empty());
    EXPECT_EQ(pool.sharedBlockRefs(0),
              (std::vector<std::uint32_t>{1, 1, 1, 1}));
    EXPECT_EQ(pool.usedBytes(), 7 * kBlockBytes)
        << "4 shared originals + 3 private copies";

    // The originals remain matchable by a fresh admission.
    const auto r2 = pool.tryReservePrefix(2, m, a);
    ASSERT_TRUE(r2.ok);
    EXPECT_EQ(r2.cached_tokens, 64u);
    pool.release(0);
    pool.release(1);
    pool.release(2);
}

TEST(KvPoolPrefix, CopyOnWriteUnderPressureFailsCleanlyThenSucceeds)
{
    const ModelSpec m = tinyModel();
    KvPool pool({5 * kBlockBytes, 16});
    const auto a = prompt(5, 64); // 4 blocks.

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    ASSERT_TRUE(pool.tryReservePrefix(1, m, a).ok);

    // Request 0 still references every shared block, so the 3 COW
    // copies cannot fit a 5-block budget: the resize must fail and
    // roll the references back untouched.
    EXPECT_FALSE(pool.tryResize(1, m, 48));
    EXPECT_EQ(pool.sharedBlockRefs(1),
              (std::vector<std::uint32_t>{2, 2, 2, 2}));
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);

    // Once request 0 leaves, the dereferenced originals go cold and
    // the same copy-on-write succeeds by reclaiming them.
    pool.release(0);
    EXPECT_TRUE(pool.tryResize(1, m, 48));
    EXPECT_EQ(pool.cowCopiedBlocks(), 3u);
    EXPECT_LE(pool.usedBytes(), 5 * kBlockBytes);
    pool.release(1);
}

TEST(KvPoolPrefix, GrowthAfterPrefixKeepsPrefixShared)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    const auto a = prompt(6, 64);

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    ASSERT_TRUE(pool.tryReservePrefix(1, m, a).ok);
    // Decode appends tokens: append-only growth never diverges.
    EXPECT_TRUE(pool.tryResize(1, m, 80));
    EXPECT_EQ(pool.cowCopiedBlocks(), 0u);
    EXPECT_EQ(pool.sharedBlockRefs(1),
              (std::vector<std::uint32_t>{2, 2, 2, 2}));
    EXPECT_EQ(pool.usedBytes(), 5 * kBlockBytes);
    pool.release(0);
    pool.release(1);
}

TEST(KvPoolPrefix, SubBlockPromptIsFullyPrivate)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    const auto a = prompt(7, 9); // Shorter than one block.
    const auto r0 = pool.tryReservePrefix(0, m, a);
    ASSERT_TRUE(r0.ok);
    EXPECT_EQ(r0.cached_tokens, 0u);
    EXPECT_EQ(pool.cachedBlocks(), 0u);
    const auto r1 = pool.tryReservePrefix(1, m, a);
    ASSERT_TRUE(r1.ok);
    EXPECT_EQ(r1.cached_tokens, 0u) << "no complete block to share";
    pool.release(0);
    pool.release(1);
}

TEST(KvPoolPrefix, RandomOpsNeverUnderflowOrExceedBudget)
{
    const ModelSpec m = tinyModel();
    const std::uint64_t cap = 24 * kBlockBytes;
    KvPool pool({cap, 16});
    Prng prng(0x5eedb10c);
    // Four recurring prompt contents drive real sharing; per-id state
    // tracks what a correct ledger must still hold.
    std::vector<bool> held(8, false);
    std::vector<std::size_t> tokens(8, 0);
    for (int op = 0; op < 4000; ++op) {
        const std::size_t id = prng.below(8);
        if (!held[id]) {
            const auto p =
                prompt(100 + prng.below(4), 16 + prng.below(120));
            if (pool.tryReservePrefix(id, m, p).ok) {
                held[id] = true;
                tokens[id] = p.size();
            }
        } else if (prng.chance(0.3)) {
            pool.release(id);
            held[id] = false;
        } else {
            // Mix growth (decode) and shrink (pruning divergence).
            const std::size_t target =
                prng.chance(0.5) ? tokens[id] + prng.below(24)
                                 : prng.below(tokens[id] + 1);
            if (pool.tryResize(id, m, target))
                tokens[id] = target;
        }
        // The ledger invariants a refcount underflow or double charge
        // would break (underflow itself aborts via SPATTEN_ASSERT):
        ASSERT_LE(pool.usedBytes(), cap);
        ASSERT_LE(pool.coldBytes(), pool.usedBytes());
        for (std::size_t i = 0; i < held.size(); ++i) {
            if (!held[i])
                continue;
            for (const std::uint32_t r : pool.sharedBlockRefs(i))
                ASSERT_GE(r, 1u);
        }
    }
    for (std::size_t i = 0; i < held.size(); ++i)
        if (held[i])
            pool.release(i);
    EXPECT_EQ(pool.usedBytes(), pool.coldBytes())
        << "only reclaimable cold cache may remain";
}

// ---------------------------------------------------------------------
// Tiered memory: HBM cold list and DRAM LRU share one release clock
// ---------------------------------------------------------------------

TEST(KvPoolTier, SameReleaseTiesDemoteAndEvictChainHeadFirst)
{
    const ModelSpec m = tinyModel();
    // 4-block HBM hot tier over a 2-block DRAM cold tier.
    KvPool pool({4 * kBlockBytes, 16, 2, 64, 2 * kBlockBytes});
    const auto a = prompt(30, 64); // 4 blocks, released in ONE call.

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    pool.release(0); // Ties: all four go cold in this one release.

    // Two private blocks reclaim two cold ones: within-release ties
    // resolve chain-head-first, so blocks 0 and 1 demote.
    ASSERT_TRUE(pool.tryReserve(1, m, 32));
    EXPECT_EQ(pool.demotedBlocks(), 2u);
    EXPECT_EQ(pool.evictedBlocks(), 0u);
    EXPECT_EQ(pool.dramUsedBytes(), 2 * kBlockBytes);
    pool.release(1);

    // Four private blocks demote the remaining two; the 2-block DRAM
    // tier overflows and true-evicts ITS oldest ticks — blocks 0, 1.
    ASSERT_TRUE(pool.tryReserve(2, m, 64));
    EXPECT_EQ(pool.demotedBlocks(), 4u);
    EXPECT_EQ(pool.evictedBlocks(), 2u);
    EXPECT_EQ(pool.dramUsedBytes(), 2 * kBlockBytes);
    pool.release(2);

    // Identity proof: the chain head is gone — a re-reservation runs
    // cold — while blocks 2 and 3 survive in DRAM (their occupied keys
    // stop the re-registration at index 2).
    const auto r3 = pool.tryReservePrefix(3, m, a);
    ASSERT_TRUE(r3.ok);
    EXPECT_EQ(r3.cached_tokens, 0u)
        << "block 0 evicted => nothing matches from the chain head";
    EXPECT_EQ(r3.promoted_bytes, 0u);
    EXPECT_EQ(pool.dramUsedBytes(), 2 * kBlockBytes)
        << "blocks 2 and 3 must still be DRAM-resident";
    EXPECT_EQ(pool.cachedBlocks(), 4u)
        << "re-registered blocks 0-1 + surviving DRAM blocks 2-3";
    pool.release(3);
}

/// Exact shadow model of the tiered reclaim machinery for the op mix
/// the random test drives: tryReservePrefix with block-aligned prompts
/// of one uniform block size plus release, under the full-width
/// (collision-free) chain hash. Block identity is (stream, chain
/// index); "front of vector" is the oldest release tick. Mirrors
/// kv_pool.cpp's makeRoom/demoteToDram/evictDramLru/rollback paths
/// operation for operation, so any divergence in which block demotes
/// or evicts shows up immediately in the compared counters and in the
/// cached_tokens of later reservations.
struct ShadowTier
{
    std::uint64_t cap = 0;
    std::uint64_t dram_cap = 0;

    using Key = std::pair<std::uint64_t, std::size_t>;
    struct SBlock
    {
        std::uint32_t refs = 0;
        bool in_dram = false;
    };
    struct Res
    {
        std::vector<Key> chain;
        std::size_t priv = 0;
    };
    struct Outcome
    {
        bool ok = false;
        std::size_t matched = 0;
        std::uint64_t promote_b = 0;
    };

    std::map<Key, SBlock> reg;    ///< Prefix-index shadow.
    std::vector<Key> cold;        ///< HBM cold list, front = oldest.
    std::vector<Key> dram;        ///< DRAM LRU, front = oldest.
    std::map<std::size_t, Res> held;
    std::uint64_t used = 0, cold_b = 0, dram_b = 0;
    std::size_t demoted = 0, promoted = 0, evicted = 0;

    static void eraseKey(std::vector<Key>& v, const Key& k)
    {
        v.erase(std::find(v.begin(), v.end(), k));
    }

    void makeRoom(std::uint64_t need)
    {
        while (used + need > cap) {
            ASSERT_FALSE(cold.empty());
            const Key k = cold.front();
            cold.erase(cold.begin());
            cold_b -= kBlockBytes;
            used -= kBlockBytes;
            if (kBlockBytes <= dram_cap) {
                while (dram_b + kBlockBytes > dram_cap) {
                    reg.erase(dram.front());
                    dram.erase(dram.begin());
                    dram_b -= kBlockBytes;
                    ++evicted;
                }
                reg.at(k).in_dram = true;
                dram_b += kBlockBytes;
                dram.push_back(k);
                ++demoted;
            } else {
                reg.erase(k);
                ++evicted;
            }
        }
    }

    Outcome reserve(std::size_t id, std::uint64_t stream,
                    std::size_t blocks)
    {
        std::size_t matched = 0;
        while (matched < blocks && reg.count({stream, matched}) != 0)
            ++matched;
        // Pull the matched blocks off their lists (chain order), as
        // the pool does before its budget check.
        const std::vector<Key> dram_before = dram;
        std::uint64_t promote_b = 0;
        std::vector<Key> chain;
        for (std::size_t i = 0; i < matched; ++i) {
            const Key k{stream, i};
            SBlock& b = reg.at(k);
            if (b.refs == 0) {
                if (b.in_dram) {
                    eraseKey(dram, k);
                    dram_b -= kBlockBytes;
                    promote_b += kBlockBytes;
                } else {
                    eraseKey(cold, k);
                    cold_b -= kBlockBytes;
                }
            }
            ++b.refs;
            chain.push_back(k);
        }
        const std::uint64_t need =
            (blocks - matched) * kBlockBytes +
            promote_b;
        if (used - cold_b + need > cap) {
            // Rollback: DRAM pulls return at their unchanged ticks
            // (exactly the pre-op DRAM list); HBM pulls re-tick onto
            // the cold tail in chain order.
            for (std::size_t i = 0; i < matched; ++i) {
                const Key k{stream, i};
                SBlock& b = reg.at(k);
                if (--b.refs > 0)
                    continue;
                if (b.in_dram) {
                    dram_b += kBlockBytes;
                } else {
                    cold.push_back(k);
                    cold_b += kBlockBytes;
                }
            }
            dram = dram_before;
            return {};
        }
        makeRoom(need);
        for (std::size_t i = 0; i < matched; ++i) {
            SBlock& b = reg.at({stream, i});
            if (b.in_dram) {
                b.in_dram = false;
                used += kBlockBytes;
                ++promoted;
            }
        }
        std::size_t priv = 0;
        bool registering = true;
        for (std::size_t i = matched; i < blocks; ++i) {
            const Key k{stream, i};
            if (registering && reg.count(k) != 0)
                registering = false; // Occupied key: private fallback.
            used += kBlockBytes;
            if (!registering) {
                ++priv;
                continue;
            }
            reg[k] = SBlock{1, false};
            chain.push_back(k);
        }
        held[id] = Res{std::move(chain), priv};
        return {true, matched, promote_b};
    }

    void release(std::size_t id)
    {
        Res& r = held.at(id);
        for (const Key& k : r.chain) {
            SBlock& b = reg.at(k);
            if (--b.refs == 0) {
                cold.push_back(k); // Fresh tick: cold tail.
                cold_b += kBlockBytes;
            }
        }
        used -= r.priv * kBlockBytes;
        held.erase(id);
    }
};

TEST(KvPoolTier, ReclaimOrderMatchesShadowModelOver4000RandomOps)
{
    const ModelSpec m = tinyModel();
    const std::uint64_t cap = 12 * kBlockBytes;
    const std::uint64_t dram_cap = 6 * kBlockBytes;
    KvPool pool({cap, 16, 2, 64, dram_cap});
    ShadowTier sh;
    sh.cap = cap;
    sh.dram_cap = dram_cap;
    Prng prng(0x7ee7ed0bdec4ULL);
    std::vector<bool> held(8, false);
    for (int op = 0; op < 4000; ++op) {
        const std::size_t id = prng.below(8);
        if (!held[id]) {
            const std::uint64_t stream = 200 + prng.below(4);
            const std::size_t blocks = 1 + prng.below(8);
            const auto got =
                pool.tryReservePrefix(id, m, prompt(stream, blocks * 16));
            const auto want = sh.reserve(id, stream, blocks);
            ASSERT_EQ(got.ok, want.ok) << "op " << op;
            if (got.ok) {
                ASSERT_EQ(got.cached_tokens, want.matched * 16)
                    << "op " << op
                    << ": a reclaim-order divergence surfaces here";
                ASSERT_EQ(got.promoted_bytes, want.promote_b)
                    << "op " << op;
                held[id] = true;
            }
        } else {
            pool.release(id);
            sh.release(id);
            held[id] = false;
        }
        ASSERT_EQ(pool.usedBytes(), sh.used) << "op " << op;
        ASSERT_EQ(pool.coldBytes(), sh.cold_b) << "op " << op;
        ASSERT_EQ(pool.dramUsedBytes(), sh.dram_b) << "op " << op;
        ASSERT_EQ(pool.cachedBlocks(), sh.reg.size()) << "op " << op;
        ASSERT_EQ(pool.demotedBlocks(), sh.demoted) << "op " << op;
        ASSERT_EQ(pool.promotedBlocks(), sh.promoted) << "op " << op;
        ASSERT_EQ(pool.evictedBlocks(), sh.evicted) << "op " << op;
    }
}

TEST(KvPoolDeath, ReleaseOfUnknownIdAsserts)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    EXPECT_DEATH(pool.release(42), "released without");
    // Double release is the same bug with extra steps.
    ASSERT_TRUE(pool.tryReserve(0, m, 16));
    pool.release(0);
    EXPECT_DEATH(pool.release(0), "released without");
}

TEST(KvPoolDeath, ByteSizeOverflowAsserts)
{
    const ModelSpec m = tinyModel();
    const KvPool pool({0, 16});
    // ~2^60 blocks x 2^16 B/block overflows uint64: the guard must
    // abort instead of wrapping into a small admissible size.
    EXPECT_DEATH(
        (void)pool.bytesForTokens(
            m, std::numeric_limits<std::size_t>::max()),
        "overflows");
}

} // namespace
} // namespace spatten
