// Fixture: clean twin of trigger_no_fp_accum_iter. The same totals,
// deterministically: integer accumulation is associative and safe in
// any order, and the FP fold runs over an insertion-ordered vector
// (not a hash table, not a thread-order collection).
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

std::uint64_t totalBlocks(const std::unordered_map<int, int>& by_slot)
{
    std::uint64_t blocks = 0;
    for (const auto& kv : by_slot)
        blocks += static_cast<std::uint64_t>(kv.second); // integer: OK
    return blocks;
}

double totalEnergy(const std::vector<double>& joules_in_slot_order)
{
    double energy_j = 0.0;
    for (const double j : joules_in_slot_order)
        energy_j += j; // ordered range: OK
    return energy_j;
}

} // namespace fixture
