/// Regenerates Fig. 23: cumulative token importance scores per layer of
/// a trained LM — important tokens stay consistent across layers and
/// survive pruning, unimportant ones are pruned on the fly.
#include <cstdio>

#include "bench_util.hpp"
#include "nn/trainer.hpp"
#include "workload/synthetic_tasks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 23",
           "Cumulative token importance across layers (trained LM)");

    CopyLmTaskConfig lc;
    lc.payload_len = 4;
    lc.filler_gap = 3;
    CopyLmTask task(lc);
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 3;
    mc.ffn_dim = 64;
    mc.max_len = task.seqLen();
    TransformerModel model(mc);
    std::printf("training LM (synthetic copy task)...\n");
    trainLm(model, task.sample(300), 6);

    const auto sample = task.sample(1).front();
    PruningPolicy pol = PruningPolicy::disabled();
    pol.token_pruning = true;
    pol.token_avg_ratio = 0.3;
    PrunedRunStats st;
    model.lmLossPruned(sample.ids, pol, &st);

    std::printf("\nsequence (S = payload symbol, f = filler, B/E = "
                "BOS/SEP):\n  ");
    const std::size_t bos = task.config().num_symbols +
                            task.config().num_fillers;
    for (std::size_t id : sample.ids) {
        if (id == bos)
            std::printf("B ");
        else if (id == bos + 1)
            std::printf("E ");
        else
            std::printf("%s ", task.isSymbol(id) ? "S" : "f");
    }
    std::printf("\n\nalive keys per layer (x = pruned):\n");
    for (std::size_t l = 0; l < st.survivors.layers(); ++l) {
        std::printf("layer %zu: ", l);
        const std::size_t* alive = st.survivors.rowBegin(l);
        const std::size_t* alive_end = st.survivors.rowEnd(l);
        for (std::size_t pos = 0; pos < sample.ids.size(); ++pos) {
            if (alive != alive_end && *alive == pos) {
                std::printf(". ");
                ++alive;
            } else {
                std::printf("x ");
            }
        }
        std::printf(" (%zu/%zu alive)\n", st.survivors.count(l),
                    sample.ids.size());
    }

    std::printf("\nfinal cumulative importance scores:\n");
    double sym_score = 0, fil_score = 0;
    std::size_t sym_n = 0, fil_n = 0;
    for (std::size_t pos = 0; pos < sample.ids.size(); ++pos) {
        const bool sym = task.isSymbol(sample.ids[pos]) ||
                         sample.ids[pos] >= bos;
        std::printf("  pos %2zu [%c] score %.3f\n", pos, sym ? 'S' : 'f',
                    st.final_token_scores[pos]);
        if (sym) {
            sym_score += st.final_token_scores[pos];
            ++sym_n;
        } else {
            fil_score += st.final_token_scores[pos];
            ++fil_n;
        }
    }
    rule();
    std::printf("mean importance: payload/structural %.3f vs filler %.3f "
                "(paper: semantically important tokens are heavily "
                "attended and survive)\n",
                sym_score / static_cast<double>(sym_n),
                fil_score / static_cast<double>(fil_n));
    return 0;
}
