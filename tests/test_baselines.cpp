/// Tests for the baseline platform models (GPU/CPU/Nano/Pi) and the
/// A3 / MNNFast prior-art models.
#include <gtest/gtest.h>

#include "accel/spatten_accelerator.hpp"
#include "baselines/a3_model.hpp"
#include "baselines/mnnfast_model.hpp"
#include "baselines/platform_model.hpp"

namespace spatten {
namespace {

WorkloadSpec
bertW(std::size_t len = 128)
{
    WorkloadSpec w;
    w.name = "bert";
    w.model = ModelSpec::bertBase();
    w.summarize_len = len;
    return w;
}

WorkloadSpec
gptW()
{
    WorkloadSpec w;
    w.name = "gpt2";
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = 512;
    w.generate_len = 32;
    return w;
}

TEST(PlatformModel, OrderingGpuFastestPiSlowest)
{
    const auto w = gptW();
    const double gpu =
        PlatformModel(PlatformSpec::titanXp()).attention(w).seconds;
    const double cpu =
        PlatformModel(PlatformSpec::xeon()).attention(w).seconds;
    const double nano =
        PlatformModel(PlatformSpec::jetsonNano()).attention(w).seconds;
    const double pi =
        PlatformModel(PlatformSpec::raspberryPi()).attention(w).seconds;
    EXPECT_LT(gpu, cpu);
    EXPECT_LT(cpu, nano);
    EXPECT_LT(nano, pi);
}

TEST(PlatformModel, GpuEffectiveRateMatchesFig18Scale)
{
    // Fig. 18: TITAN Xp achieves ~0.02 TFLOPS on BERT attention and
    // ~0.01 TFLOPS on GPT-2. Check order of magnitude.
    const auto bert = PlatformModel(PlatformSpec::titanXp())
                          .attention(bertW(384));
    EXPECT_GT(bert.effectiveTflops(), 0.004);
    EXPECT_LT(bert.effectiveTflops(), 0.12);
    const auto gpt =
        PlatformModel(PlatformSpec::titanXp()).attention(gptW());
    EXPECT_LT(gpt.effectiveTflops(), bert.effectiveTflops());
}

TEST(PlatformModel, TokenPruningHelpsGpuToo)
{
    // §V-B: topk+gather token pruning on GPU gives up to ~2.3x with 3x
    // pruning; our model should show a benefit but below linear.
    const PlatformModel gpu(PlatformSpec::titanXp());
    const auto dense = gpu.attention(bertW(384), 1.0);
    const auto pruned = gpu.attention(bertW(384), 1.0 / 3.0);
    const double speedup = dense.seconds / pruned.seconds;
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 9.0);
}

TEST(PlatformModel, EnergyIsPowerTimesLatency)
{
    const PlatformModel gpu(PlatformSpec::titanXp());
    const auto r = gpu.attention(bertW());
    EXPECT_NEAR(r.energy_j, r.seconds * 61.0, 1e-9);
}

TEST(PlatformModel, FcFasterPerFlopThanAttention)
{
    // FCs run at better utilization: more FLOPs per second than the
    // attention path on the same platform.
    const PlatformModel gpu(PlatformSpec::titanXp());
    const auto attn = gpu.attention(bertW(384));
    const auto fc = gpu.fc(bertW(384));
    EXPECT_GT(fc.effectiveTflops(), attn.effectiveTflops());
}

TEST(A3, EffectiveThroughputNearPaper)
{
    // Table III: A3 effective throughput 221 GOP/s (1.73x over its
    // 128 GOP/s dense datapath... 2 ops x 128 mults = 256 GOP/s peak).
    A3Model a3;
    const auto r = a3.run(bertW(384));
    EXPECT_GT(r.effectiveGops(), 120.0);
    EXPECT_LT(r.effectiveGops(), 450.0);
}

TEST(A3, PreprocessingOverheadNonzero)
{
    A3Model a3;
    const auto r = a3.run(bertW(128));
    EXPECT_GT(r.preprocess_seconds, 0.0);
    EXPECT_LT(r.preprocess_seconds, r.seconds);
}

TEST(A3, NoDramReduction)
{
    // A3 fetches everything: DRAM bytes equal dense 12-bit traffic.
    A3Model a3;
    const auto r = a3.run(bertW(256));
    const double dense_bytes =
        3.0 * 256 * 64 * 12 * 1.5 * 12; // 3 tensors x L x d x h x 1.5B x layers
    EXPECT_NEAR(r.dram_bytes, dense_bytes, dense_bytes * 0.01);
}

TEST(A3, RejectsGenerativeWorkloads)
{
    A3Model a3;
    EXPECT_DEATH(a3.run(gptW()), "discriminative");
}

TEST(MnnFast, SlowerThanA3)
{
    // Table III: A3 1.8x over MNNFast; MNNFast only prunes V locally.
    const auto w = bertW(384);
    const auto a3 = A3Model().run(w);
    const auto mnn = MnnFastModel().run(w);
    EXPECT_GT(mnn.seconds, a3.seconds);
}

TEST(MnnFast, RejectsGenerativeWorkloads)
{
    EXPECT_DEATH(MnnFastModel().run(gptW()), "discriminative");
}

TEST(PriorArt, SpAttenEighthBeatsBoth)
{
    // Table III headline: SpAtten-1/8 is 1.6x faster than A3 and 3.0x
    // faster than MNNFast under the same mults/bandwidth budget.
    const auto w = bertW(384);
    SpAttenAccelerator eighth(SpAttenConfig::eighth());
    PruningPolicy pol;
    pol.token_avg_ratio = 0.15;
    pol.head_avg_ratio = 0.05;
    pol.local_v_ratio = 0.3;
    pol.pq.enabled = false; // BERT uses static quantization
    const auto sp = eighth.run(w, pol);
    const auto a3 = A3Model().run(w);
    const auto mnn = MnnFastModel().run(w);
    const double sp_gops = sp.attention_flops_dense / sp.seconds * 1e-9;
    EXPECT_GT(sp_gops / a3.effectiveGops(), 1.2);
    EXPECT_GT(sp_gops / mnn.effectiveGops(), 2.0);
}

TEST(PriorArt, SpAttenVsGpuSpeedupScale)
{
    // Fig. 14 scale check: SpAtten vs TITAN Xp speedup on a BERT task
    // should be in the tens-to-hundreds range.
    SpAttenAccelerator accel;
    PruningPolicy pol;
    pol.pq.enabled = false;
    const auto sp = accel.run(bertW(384), pol);
    const auto gpu =
        PlatformModel(PlatformSpec::titanXp()).attention(bertW(384));
    const double speedup = gpu.seconds / sp.seconds;
    EXPECT_GT(speedup, 30.0);
    EXPECT_LT(speedup, 2000.0);
}

} // namespace
} // namespace spatten
