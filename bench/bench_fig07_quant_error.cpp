/// Regenerates Fig. 7: softmax quantization error (fp32 vs int4 scores)
/// as a function of the max attention probability — dominated
/// distributions quantize almost for free, flat ones need more bits.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/progressive_quant.hpp"
#include "workload/attention_trace.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 7",
           "Mean attention-prob error (fp32 vs int4) vs max probability");

    Prng prng(2026);
    const std::size_t rows = 4000, len = 64;
    const auto scores = syntheticScoreRows(rows, len, 9.0, prng);

    constexpr int kBuckets = 10;
    std::vector<double> err_sum(kBuckets, 0.0);
    std::vector<int> count(kBuckets, 0);
    for (const auto& s : scores) {
        const double maxp = maxSoftmaxProb(s);
        int b = static_cast<int>(maxp * kBuckets);
        b = std::min(b, kBuckets - 1);
        const auto bi = static_cast<std::size_t>(b);
        err_sum[bi] += quantizedSoftmaxError(s, 4);
        ++count[bi];
    }

    std::printf("%-22s %12s %8s\n", "max attention prob", "mean err",
                "rows");
    rule();
    double first = -1.0, last = -1.0;
    for (int b = 0; b < kBuckets; ++b) {
        const auto bi = static_cast<std::size_t>(b);
        if (count[bi] == 0)
            continue;
        const double e = err_sum[bi] / count[bi];
        if (first < 0)
            first = e;
        last = e;
        std::printf("[%4.2f, %4.2f)          %12.5f %8d\n",
                    b / static_cast<double>(kBuckets),
                    (b + 1) / static_cast<double>(kBuckets), e, count[bi]);
    }
    rule();
    std::printf("Error at low max-prob / at high max-prob = %.1fx "
                "(paper: errors shrink by ~an order of magnitude as the "
                "max prob approaches 1)\n",
                first / last);
    return 0;
}
