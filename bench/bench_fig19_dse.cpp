/// Regenerates Fig. 19: design space exploration — top-k engine
/// parallelism sweep and K/V SRAM size sweep on a GPT-2 application.
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "bench_util.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 19",
           "DSE: top-k parallelism and K/V SRAM size (GPT-2 app)");

    const auto b = gptBenchmarks().front(); // gpt2-small-wikitext2

    std::printf("(a) top-k engine parallelism sweep "
                "(paper: 168 -> 771 GFLOPS from 1 to 32, saturating at 16)\n");
    std::printf("%12s %14s\n", "parallelism", "GFLOPS");
    rule();
    for (std::size_t p : {1u, 2u, 4u, 8u, 16u, 32u}) {
        SpAttenConfig cfg;
        cfg.topk_parallelism = p;
        SpAttenAccelerator accel(cfg);
        const RunResult r = accel.run(b.workload, b.policy);
        std::printf("%12zu %14.0f\n", p,
                    r.attention_flops / r.seconds * 1e-9);
    }

    std::printf("\n(b) K/V SRAM size sweep (paper: flat — fully pipelined, "
                "196 KB per SRAM suffices)\n");
    std::printf("%12s %14s %12s\n", "total KB", "GFLOPS", "area mm^2");
    rule();
    for (std::size_t kb : {392u, 784u}) {
        SpAttenConfig cfg;
        cfg.key_sram_kb = kb / 2;
        cfg.value_sram_kb = kb / 2;
        SpAttenAccelerator accel(cfg);
        const RunResult r = accel.run(b.workload, b.policy);
        std::printf("%12zu %14.0f %12.2f\n", kb,
                    r.attention_flops / r.seconds * 1e-9,
                    accel.areaMm2());
    }
    return 0;
}
