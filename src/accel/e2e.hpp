/**
 * @file
 * SpAtten-e2e (§V-B "End-to-End Performance with FFN Support"): the
 * multiplier arrays are reused to execute the FC layers (QKV projections,
 * output projection and the two FFN FCs), with linear-symmetrically
 * quantized weights (12-bit or 8-bit) streamed from DRAM.
 *
 * In the generation stage the FCs are matrix-vector products, so the FC
 * part is memory-bound on the weight stream; in the summarization stage
 * they are matrix-matrix and compute-bound. Token pruning shrinks FC work
 * in the summarization stage only (Table IV).
 */
#ifndef SPATTEN_ACCEL_E2E_HPP
#define SPATTEN_ACCEL_E2E_HPP

#include "accel/pipeline.hpp"

namespace spatten {

/** End-to-end (attention + FC) result. */
struct E2eResult
{
    RunResult attention;   ///< Attention-layer portion (SpAtten pipeline).
    double fc_seconds = 0; ///< FC portion (reused multiplier arrays).
    double fc_flops = 0;
    double fc_dram_bytes = 0;
    // Stage split (Table IV / Fig. 15 measure the generation stage).
    double fc_sum_seconds = 0;
    double fc_gen_seconds = 0;
    double fc_sum_flops = 0;
    double fc_gen_flops = 0;

    double totalSeconds() const { return attention.seconds + fc_seconds; }
    double totalFlops() const { return attention.attention_flops + fc_flops; }
    double attnLatencyShare() const
    {
        const double t = totalSeconds();
        return t > 0 ? attention.seconds / t : 0;
    }
    /** Generation-stage total (attention + FC), the Table IV quantity. */
    double generationSeconds() const
    {
        return attention.generate_seconds + fc_gen_seconds;
    }
    /** Attention share of the generation stage. */
    double genAttnShare() const
    {
        const double t = generationSeconds();
        return t > 0 ? attention.generate_seconds / t : 0;
    }
};

/** Configuration for the FFN extension. */
struct E2eConfig
{
    int fc_weight_bits = 8;  ///< 8-bit or 12-bit FC weights (Fig. 15).
    double fc_compute_util = 0.85; ///< Multiplier utilization on dense FC.
};

/** SpAtten-e2e: attention pipeline + FC execution. */
class SpAttenE2e
{
  public:
    SpAttenE2e(SpAttenConfig cfg = SpAttenConfig{},
               E2eConfig e2e = E2eConfig{});

    /** Run the full model: attention (SpAtten pipeline) + FC layers. */
    E2eResult run(const WorkloadSpec& workload, const PruningPolicy& policy,
                  std::uint64_t request_seed = kDefaultRequestSeed);

    const E2eConfig& e2eConfig() const { return e2e_; }

  private:
    SpAttenConfig cfg_;
    E2eConfig e2e_;
    SpAttenPipeline pipeline_;
};

/** FC parameter count per transformer block (QKV + out proj + 2 FFN FCs). */
double fcParamsPerLayer(const ModelSpec& model);

} // namespace spatten

#endif // SPATTEN_ACCEL_E2E_HPP
