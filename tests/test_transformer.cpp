/// Tests for the transformer model: full-model gradient check, training
/// convergence on synthetic tasks, and SpAtten-pruned inference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "nn/trainer.hpp"
#include "nn/transformer.hpp"
#include "workload/synthetic_tasks.hpp"

namespace spatten {
namespace {

TinyModelConfig
tinyConfig()
{
    TinyModelConfig cfg;
    cfg.vocab = 12;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.ffn_dim = 24;
    cfg.max_len = 12;
    cfg.num_classes = 3;
    cfg.seed = 99;
    return cfg;
}

TEST(Transformer, FullModelGradientCheck)
{
    TransformerModel model(tinyConfig());
    const std::vector<std::size_t> ids{1, 4, 7, 2, 9};
    const std::size_t label = 1;

    model.zeroGrads();
    model.lossClassifyGrad(ids, label);
    auto params = model.params();

    // Spot-check gradients on a spread of parameters via central
    // differences. fp32 forward => generous but meaningful tolerance.
    Prng pick(5);
    int checked = 0;
    for (Param* p : params) {
        if (p->numel() == 0)
            continue;
        const std::size_t idx = pick.below(p->numel());
        const float eps = 1e-2f;
        const float orig = p->value[idx];
        p->value[idx] = orig + eps;
        const double lp = model.lossClassify(ids, label);
        p->value[idx] = orig - eps;
        const double lm = model.lossClassify(ids, label);
        p->value[idx] = orig;
        const double num = (lp - lm) / (2.0 * eps);
        const double ana = p->grad[idx];
        const double scale = std::max({1e-3, std::fabs(num),
                                       std::fabs(ana)});
        EXPECT_NEAR(ana, num, 0.15 * scale + 5e-4)
            << "param " << p->name << " idx " << idx;
        ++checked;
    }
    EXPECT_GT(checked, 10);
}

TEST(Transformer, LmGradientCheckSpot)
{
    TransformerModel model(tinyConfig());
    const std::vector<std::size_t> ids{3, 1, 4, 1, 5, 9};
    model.zeroGrads();
    model.lossLmGrad(ids);
    auto params = model.params();
    // Check a couple of attention parameters specifically (causal path).
    int checked = 0;
    for (Param* p : params) {
        if (p->name.find(".wq.w") == std::string::npos &&
            p->name.find(".wv.w") == std::string::npos)
            continue;
        const std::size_t idx = 7 % p->numel();
        const float eps = 1e-2f;
        const float orig = p->value[idx];
        const double ana = p->grad[idx];
        p->value[idx] = orig + eps;
        // lmLoss is eval-only (no grads touched).
        const double lp = model.lmLoss(ids);
        p->value[idx] = orig - eps;
        const double lm = model.lmLoss(ids);
        p->value[idx] = orig;
        const double num = (lp - lm) / (2.0 * eps);
        const double scale = std::max({1e-3, std::fabs(num),
                                       std::fabs(ana)});
        EXPECT_NEAR(ana, num, 0.15 * scale + 5e-4) << p->name;
        ++checked;
    }
    EXPECT_GE(checked, 4);
}

TEST(Transformer, TrainingReducesClassifierLoss)
{
    KeywordTaskConfig tc;
    tc.seq_len = 12;
    KeywordTask task(tc);
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 2;
    mc.ffn_dim = 48;
    mc.max_len = tc.seq_len;
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);
    const auto train = task.sample(80);
    const double first = trainClassifier(model, train, 1);
    const double later = trainClassifier(model, train, 4);
    EXPECT_LT(later, first);
}

TEST(Transformer, LearnsKeywordTask)
{
    KeywordTaskConfig tc;
    tc.seq_len = 16;
    KeywordTask task(tc);
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 2;
    mc.ffn_dim = 64;
    mc.max_len = tc.seq_len;
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);
    const auto train = task.sample(250);
    const auto test = task.sample(60);
    trainClassifier(model, train, 6);
    const double acc = classifierAccuracy(model, test);
    EXPECT_GT(acc, 0.85) << "trained accuracy too low";
}

TEST(Transformer, PrunedWithZeroRatiosMatchesDense)
{
    KeywordTask task;
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 16;
    mc.heads = 2;
    mc.layers = 2;
    mc.ffn_dim = 24;
    mc.max_len = task.seqLen();
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);
    const auto ex = task.sample(20);
    const PruningPolicy none = PruningPolicy::disabled();
    for (const auto& e : ex) {
        EXPECT_EQ(model.predictClassPruned(e.ids, none),
                  model.predictClass(e.ids));
    }
    // LM path: zero-pruning loss equals dense loss.
    CopyLmTask lm_task;
    TinyModelConfig lc;
    lc.vocab = lm_task.vocabSize();
    lc.d_model = 16;
    lc.heads = 2;
    lc.layers = 2;
    lc.ffn_dim = 24;
    lc.max_len = lm_task.seqLen();
    TransformerModel lm(lc);
    const auto lme = lm_task.sample(5);
    for (const auto& e : lme) {
        EXPECT_NEAR(lm.lmLossPruned(e.ids, none), lm.lmLoss(e.ids), 1e-4);
    }
}

TEST(Transformer, PrunedStatsReflectPolicy)
{
    KeywordTask task;
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 16;
    mc.heads = 4;
    mc.layers = 3;
    mc.ffn_dim = 24;
    mc.max_len = task.seqLen();
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);
    const auto ex = task.sample(3);

    PruningPolicy pol = PruningPolicy::disabled();
    pol.token_pruning = true;
    pol.token_avg_ratio = 0.3;
    pol.head_pruning = true;
    pol.head_avg_ratio = 0.3;
    PrunedRunStats stats;
    model.predictClassPruned(ex[0].ids, pol, &stats);
    EXPECT_LT(stats.tokens_kept_frac, 1.0);
    EXPECT_LT(stats.heads_kept_frac, 1.0);
    EXPECT_FALSE(stats.surviving_tokens.empty());
    EXPECT_EQ(stats.survivors.layers(), mc.layers);
    EXPECT_TRUE(stats.survivors.materialized());
    // Cascade: alive sets shrink monotonically, each row a subset of
    // the previous one (ids ascending within a row).
    for (std::size_t l = 1; l < stats.survivors.layers(); ++l) {
        EXPECT_LE(stats.survivors.count(l), stats.survivors.count(l - 1));
        EXPECT_TRUE(std::includes(stats.survivors.rowBegin(l - 1),
                                  stats.survivors.rowEnd(l - 1),
                                  stats.survivors.rowBegin(l),
                                  stats.survivors.rowEnd(l)));
    }
}

TEST(Transformer, ModeratePruningPreservesAccuracy)
{
    // The Fig. 21 mechanism on a trained model: moderate pruning keeps
    // accuracy within a few points; extreme pruning destroys it.
    KeywordTaskConfig tc;
    tc.seq_len = 16;
    KeywordTask task(tc);
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 3;
    mc.ffn_dim = 64;
    mc.max_len = tc.seq_len;
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);
    trainClassifier(model, task.sample(250), 6);
    const auto test = task.sample(60);
    const double dense_acc = classifierAccuracy(model, test);

    PruningPolicy light = PruningPolicy::disabled();
    light.token_pruning = true;
    light.token_avg_ratio = 0.10;
    const double light_acc =
        classifierAccuracyPruned(model, test, light);
    EXPECT_GT(light_acc, dense_acc - 0.12);

    PruningPolicy extreme = PruningPolicy::disabled();
    extreme.token_pruning = true;
    extreme.token_avg_ratio = 0.85;
    const double extreme_acc =
        classifierAccuracyPruned(model, test, extreme);
    EXPECT_LT(extreme_acc, light_acc + 1e-9);
}

TEST(Transformer, InstantImportanceModeRuns)
{
    // The PoWER-BERT ablation mode must run and produce valid stats;
    // with zero ratio it must match dense regardless of mode.
    KeywordTask task;
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 16;
    mc.heads = 2;
    mc.layers = 3;
    mc.ffn_dim = 24;
    mc.max_len = task.seqLen();
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);
    const auto ex = task.sample(5);

    PruningPolicy inst = PruningPolicy::disabled();
    inst.importance_mode = ImportanceMode::Instant;
    for (const auto& e : ex)
        EXPECT_EQ(model.predictClassPruned(e.ids, inst),
                  model.predictClass(e.ids));

    inst.token_pruning = true;
    inst.token_avg_ratio = 0.4;
    PrunedRunStats st;
    model.predictClassPruned(ex[0].ids, inst, &st);
    EXPECT_LT(st.tokens_kept_frac, 1.0);
}

TEST(Transformer, ImportanceModesCanDisagree)
{
    // With aggressive pruning the two signals generally select
    // different survivor sets on at least some inputs.
    KeywordTask task;
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 16;
    mc.heads = 2;
    mc.layers = 4;
    mc.ffn_dim = 24;
    mc.max_len = task.seqLen();
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);
    PruningPolicy cum = PruningPolicy::disabled();
    cum.token_pruning = true;
    cum.token_avg_ratio = 0.5;
    PruningPolicy inst = cum;
    inst.importance_mode = ImportanceMode::Instant;
    bool any_diff = false;
    for (const auto& e : task.sample(10)) {
        PrunedRunStats sc, si;
        model.predictClassPruned(e.ids, cum, &sc);
        model.predictClassPruned(e.ids, inst, &si);
        any_diff |= sc.surviving_tokens != si.surviving_tokens;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Transformer, LmLearnsCopyTask)
{
    CopyLmTaskConfig tc;
    tc.payload_len = 3;
    tc.filler_gap = 1;
    CopyLmTask task(tc);
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 2;
    mc.ffn_dim = 64;
    mc.max_len = task.seqLen();
    TransformerModel model(mc);
    const auto train = task.sample(200);
    const auto test = task.sample(30);
    const double before = lmMeanLoss(model, test);
    trainLm(model, train, 6);
    const double after = lmMeanLoss(model, test);
    EXPECT_LT(after, before * 0.8);
}

} // namespace
} // namespace spatten
