#include "accel/spatten_accelerator.hpp"

#include <algorithm>

#include "accel/decode_session.hpp"
#include "common/logging.hpp"
#include "serve/batch_runner.hpp"

namespace spatten {

SpAttenAccelerator::SpAttenAccelerator(SpAttenConfig cfg)
    : cfg_(cfg), pipeline_(cfg)
{
}

RunResult
SpAttenAccelerator::run(const WorkloadSpec& workload,
                        const PruningPolicy& policy,
                        std::uint64_t request_seed)
{
    return pipeline_.run(workload, policy, request_seed);
}

BatchResult
SpAttenAccelerator::runBatch(const std::vector<BatchRequest>& batch,
                             std::size_t num_threads) const
{
    return BatchRunner(cfg_, BatchRunnerConfig{num_threads}).run(batch);
}

DecodeResult
SpAttenAccelerator::runDecode(const WorkloadSpec& workload,
                              const PruningPolicy& policy,
                              std::uint64_t request_seed) const
{
    DecodeSession session(cfg_, workload, policy, request_seed);
    DecodeResult out;
    // The full prompt KV is resident through prefill (pruning only
    // shrinks it afterwards), so the peak starts there.
    out.peak_kv_bytes =
        workload.summarize_len * session.kvBytesPerToken();
    out.prefill_seconds = session.prefill();
    out.kv_lengths.push_back(session.kvLength());
    while (!session.done()) {
        // Each pass holds the carried KV plus the new token before
        // pruning — the same pre-prune transient a serving-layer
        // KvPool reserves for the step.
        const std::size_t transient_tokens = session.kvLength() + 1;
        out.step_seconds.push_back(session.decodeStep());
        out.kv_lengths.push_back(session.kvLength());
        out.peak_kv_bytes =
            std::max(out.peak_kv_bytes,
                     transient_tokens * session.kvBytesPerToken());
    }
    out.result = session.finalize();
    return out;
}

std::unique_ptr<BackendSession>
SpAttenAccelerator::makeSession(const WorkloadSpec& workload,
                                const PruningPolicy& policy,
                                std::uint64_t request_seed) const
{
    return std::make_unique<DecodeSession>(cfg_, workload, policy,
                                           request_seed);
}

void
SpAttenAccelerator::stepDecodeBatch(
    const std::vector<BackendSession*>& lanes,
    std::vector<double>& seconds_out) const
{
    seconds_out.resize(lanes.size());
    // Downcast once; a foreign session type in the batch (a scheduler
    // bug, but cheap to tolerate) falls back to the serial default.
    std::vector<DecodeSession*> sess(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        sess[i] = dynamic_cast<DecodeSession*>(lanes[i]);
        if (!sess[i]) {
            AcceleratorBackend::stepDecodeBatch(lanes, seconds_out);
            return;
        }
    }
    // Open every lane's pass, then advance all lanes layer-major.
    // Lanes served whole from the replay memo return 0 owed layers and
    // sit out the loop; models can differ per lane, so each lane owes
    // its own layer count.
    std::vector<std::size_t> owed(lanes.size());
    std::size_t max_owed = 0;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        owed[i] = sess[i]->beginDecodeStep();
        max_owed = std::max(max_owed, owed[i]);
    }
    for (std::size_t l = 0; l < max_owed; ++l)
        for (std::size_t i = 0; i < lanes.size(); ++i)
            if (l < owed[i])
                sess[i]->stepDecodeLayer();
    for (std::size_t i = 0; i < lanes.size(); ++i)
        seconds_out[i] = sess[i]->endDecodeStep();
}

std::vector<AreaEntry>
SpAttenAccelerator::area() const
{
    return areaBreakdown(
        static_cast<int>(cfg_.totalMultipliers()),
        static_cast<int>(cfg_.key_sram_kb + cfg_.value_sram_kb),
        static_cast<int>(cfg_.topk_parallelism));
}

double
SpAttenAccelerator::areaMm2() const
{
    return totalAreaMm2(area());
}

double
SpAttenAccelerator::computeRoofTflops() const
{
    // mul + add per multiplier per cycle.
    return 2.0 * static_cast<double>(cfg_.totalMultipliers()) *
           cfg_.core_freq_ghz * 1e-3;
}

double
SpAttenAccelerator::bandwidthRoofGBs() const
{
    return cfg_.hbm.peakBandwidthGBs();
}

std::string
SpAttenAccelerator::configTable() const
{
    std::string s;
    s += strfmt("%-24s %s\n", "Q-K-V Fetcher",
                strfmt("32x%d addr xbar, %dx32 data xbar, 64-deep FIFOs",
                       cfg_.hbm.channels, cfg_.hbm.channels)
                    .c_str());
    s += strfmt("%-24s %zu KB Key SRAM; %zux12-bit multipliers\n", "Q x K",
                cfg_.key_sram_kb, cfg_.qk.num_multipliers);
    s += strfmt("%-24s FIFO depth %zu; parallelism %zu\n", "Softmax",
                cfg_.softmax.fifo_depth, cfg_.softmax.parallelism);
    s += strfmt("%-24s %zu KB Value SRAM; %zux12-bit multipliers\n",
                "AttnProb x V", cfg_.value_sram_kb,
                cfg_.pv.num_multipliers);
    s += strfmt("%-24s parallelism %zu (x2 engines)\n", "Top-k",
                cfg_.topk_parallelism);
    s += strfmt("%-24s HBM2, %dx128-bit channels @ %.0f GHz, %.0f GB/s\n",
                "HBM", cfg_.hbm.channels, cfg_.hbm.freq_ghz,
                cfg_.hbm.peakBandwidthGBs());
    s += strfmt("%-24s %.2f mm^2 @ 40 nm, %.2f TFLOPS roof\n", "Synthesis",
                areaMm2(), computeRoofTflops());
    return s;
}

} // namespace spatten
