/**
 * @file
 * Shared helpers for the benchmark harness binaries: geometric means,
 * table printing, and the standard banner that cites which paper
 * table/figure a binary regenerates.
 */
#ifndef SPATTEN_BENCH_BENCH_UTIL_HPP
#define SPATTEN_BENCH_BENCH_UTIL_HPP

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace spatten {
namespace bench {

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += std::log(x);
    return std::exp(s / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Print the standard experiment banner. */
inline void
banner(const char* experiment, const char* description)
{
    std::printf("==============================================================\n");
    std::printf("SpAtten reproduction — %s\n", experiment);
    std::printf("%s\n", description);
    std::printf("==============================================================\n");
}

/** Print a horizontal rule. */
inline void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

} // namespace bench
} // namespace spatten

#endif // SPATTEN_BENCH_BENCH_UTIL_HPP
