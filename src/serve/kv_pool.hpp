/**
 * @file
 * Paged, ref-counted KV-cache block allocator for one simulated
 * accelerator, with shared-prefix caching.
 *
 * Production continuous-batching systems are defined by the coupling
 * between scheduling and KV memory: a request can only be admitted when
 * its prompt KV fits the device's HBM budget, a decoding request can
 * only grow its cache while blocks remain, and under pressure the
 * scheduler preempts a victim and recomputes it later. KvPool is that
 * accounting, vLLM-style: the byte budget (derived from
 * HbmConfig::capacityBytes() by default) is carved into fixed-size
 * token blocks, each reservation holds a chain of blocks, and blocks
 * carry reference counts so that requests whose prompts share a cached
 * prefix map the same physical blocks copy-free.
 *
 * Prefix caching: a reservation made through tryReservePrefix()
 * registers its complete prompt blocks in a prefix-hash index keyed on
 * (model shape, prompt-token chain hash). A later reservation whose
 * prompt starts with the same token blocks maps them by bumping their
 * refcounts — charging the budget only for its non-shared tail — and
 * the serving layer can skip the shared tokens' prefill compute.
 * Cached blocks whose last holder releases them stay resident ("cold")
 * and are evicted LRU-first only when an allocation needs their bytes,
 * so the budget check is never optimistic.
 *
 * Copy-on-write: shared blocks stay valid only while a reservation
 * grows append-only (decode appends tokens after the prefix). The first
 * shrink — cascade pruning dropping survivors — diverges the resident
 * content from the cached prefix, so the reservation copies the blocks
 * it still needs into private ones (possibly evicting cold blocks, and
 * failing like any allocation when hot blocks leave no room) and drops
 * its references on the cached originals, which remain in the index for
 * future admissions.
 *
 * Tiered memory (Hybrid2-style, KvPoolConfig::dram_capacity_bytes > 0):
 * the HBM byte budget becomes the *hot* tier and a far-memory DRAM pool
 * becomes the *cold* tier. When an allocation needs a cold cached
 * block's hot bytes, the block *demotes* to DRAM (it stays registered
 * in the prefix index; only its residency moves) instead of being
 * dropped; true eviction happens only when the DRAM tier itself fills,
 * still LRU-first on the same global clock — the demotion/eviction
 * order is a pure function of the release order either way. A later
 * prefix hit on a DRAM-resident block *promotes* it back to HBM: the
 * promoted bytes count against the hot budget of that admission (both
 * tiers gate admission), and the reservation reports them so the
 * scheduler can charge the migration's latency to the admitting
 * request's prefill timeline. The pool itself stays pure bookkeeping —
 * it meters migration bytes and block counts; time and energy are
 * priced by the serving layer (FarMemoryConfig in hbm/hbm.hpp,
 * EnergyConfig::far_bit_energy_pj). With dram_capacity_bytes == 0 every
 * code path above is untouched and the pool is bit-identical to the
 * single-budget allocator.
 *
 * The pool is plain deterministic bookkeeping driven by the scheduler's
 * single-threaded coordinator; it never touches simulated time.
 */
#ifndef SPATTEN_SERVE_KV_POOL_HPP
#define SPATTEN_SERVE_KV_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/model_spec.hpp"

namespace spatten {

/** Static configuration of one accelerator's KV pool. */
struct KvPoolConfig
{
    /// Byte budget for resident KV caches. 0 = unlimited (the pool
    /// still accounts occupancy but never rejects).
    std::uint64_t capacity_bytes = 0;
    /// Allocation granularity in tokens (vLLM-style paged blocks): a
    /// request holding t tokens reserves ceil(t / block_tokens) blocks.
    std::size_t block_tokens = 16;
    /// Storage width of one KV element on the owning device (bytes):
    /// 2 for SpAtten's fp16-equivalent plane layout (the default), 4
    /// for the fp32 platform baselines (AcceleratorBackend::
    /// kvBytesPerElem()).
    std::size_t bytes_per_elem = 2;
    /// Width of the prefix-index chain hash. 64 in production; tests
    /// shrink it to force collisions and pin the private-block
    /// fallback (a colliding lookup compares the stored token content
    /// and treats a mismatch as a miss).
    std::size_t prefix_hash_bits = 64;
    /// Far-memory DRAM cold-tier byte budget (FarMemoryConfig::
    /// capacityBytes()). 0 disables tiering: cold cached blocks stay
    /// HBM-resident until true-evicted, the single-budget semantics
    /// every PR-2..6 golden pins.
    std::uint64_t dram_capacity_bytes = 0;
};

/** Per-accelerator paged KV block allocator. */
class KvPool
{
  public:
    /** Outcome of a prefix-aware reservation. */
    struct PrefixReservation
    {
        bool ok = false;             ///< Reserved (false: budget exceeded).
        std::size_t cached_tokens = 0; ///< Leading prompt tokens mapped
                                       ///< copy-free from the cache.
        std::uint64_t shared_bytes = 0; ///< Bytes of those shared blocks
                                        ///< (charged to no one anew).
        /// Bytes promoted DRAM -> HBM to serve this hit (0 when every
        /// matched block was already hot-tier resident, or tiering is
        /// off). The scheduler charges this burst's transfer latency to
        /// the admitting request's prefill timeline.
        std::uint64_t promoted_bytes = 0;
    };

    explicit KvPool(KvPoolConfig cfg = KvPoolConfig{});

    const KvPoolConfig& config() const { return cfg_; }

    /** Bytes a @p tokens-token KV cache of @p model reserves (rounded
     *  up to whole blocks). 0 tokens reserve nothing. Asserts when the
     *  product blocks x block_tokens x kvBytesPerToken overflows
     *  uint64 — a silent wrap would turn an impossible reservation
     *  into an admissible one. */
    std::uint64_t bytesForTokens(const ModelSpec& model,
                                 std::size_t tokens) const;

    /**
     * Reserve a new private cache of @p tokens tokens for request
     * @p id (no prefix lookup; the pre-caching admission path).
     * @return false (and reserve nothing) when the budget would be
     * exceeded even after evicting every cold cached block; unlimited
     * pools always succeed.
     */
    bool tryReserve(std::size_t id, const ModelSpec& model,
                    std::size_t tokens);

    /**
     * Reserve a cache for request @p id whose prompt content is
     * @p prompt_tokens: map the longest cached block-chain prefix
     * copy-free (refcount bumps, no new bytes), register the remaining
     * complete prompt blocks in the prefix index for future
     * admissions, and allocate the tail privately. Only the non-shared
     * blocks are charged against the budget. A hash collision (same
     * chain hash, different stored tokens) is treated as a miss: the
     * block falls back to a private allocation.
     */
    PrefixReservation tryReservePrefix(
        std::size_t id, const ModelSpec& model,
        const std::vector<std::uint64_t>& prompt_tokens);

    /**
     * Resize request @p id's reservation to @p tokens tokens.
     * Growing appends private blocks and fails (leaving the
     * reservation untouched) when the budget would be exceeded after
     * cold-block eviction. Shrinking a fully private reservation
     * always succeeds and frees blocks; shrinking one that still maps
     * shared prefix blocks diverges the content (cascade pruning) and
     * triggers copy-on-write — the still-needed shared blocks are
     * copied into private ones, which like any allocation can fail
     * under pressure (the scheduler preempts a victim and retries).
     */
    bool tryResize(std::size_t id, const ModelSpec& model,
                   std::size_t tokens);

    /** Drop request @p id's reservation. Shared blocks are
     *  dereferenced (cached copies stay resident until evicted);
     *  private blocks are freed. Asserts on an unknown id — a silent
     *  no-op would let scheduler double-release/leak bugs hide. */
    void release(std::size_t id);

    std::uint64_t capacityBytes() const { return cfg_.capacity_bytes; }
    /// HBM-resident bytes: every hot-tier block — held by a request or
    /// cold in the prefix cache — counted once regardless of refcount.
    /// DRAM-resident blocks are accounted separately (dramUsedBytes()).
    std::uint64_t usedBytes() const { return used_bytes_; }
    std::uint64_t peakBytes() const { return peak_bytes_; }
    std::size_t residentRequests() const { return held_.size(); }
    bool unlimited() const { return cfg_.capacity_bytes == 0; }
    /// Far-memory cold tier configured (dram_capacity_bytes > 0).
    bool tiered() const { return cfg_.dram_capacity_bytes > 0; }

    // ---- Prefix-cache introspection (tests, ServeReport) ----
    /// Blocks currently registered in the prefix index (hot + cold,
    /// both tiers).
    std::size_t cachedBlocks() const { return prefix_index_.size(); }
    /// Bytes of cold cached blocks still HBM-resident (refcount 0):
    /// reclaimable on demand by demotion or eviction.
    std::uint64_t coldBytes() const { return cold_bytes_; }
    /// Blocks copied by copy-on-write divergences so far.
    std::size_t cowCopiedBlocks() const { return cow_copied_blocks_; }
    /// Cached blocks dropped from the cache entirely so far (tiering
    /// off: cold HBM blocks reclaimed for an allocation; tiering on:
    /// DRAM-tier LRU overflow, or a cold block too large for the DRAM
    /// budget altogether).
    std::size_t evictedBlocks() const { return evicted_blocks_; }

    // ---- Tiered-memory introspection (tests, ServeReport) ----
    std::uint64_t dramCapacityBytes() const
    {
        return cfg_.dram_capacity_bytes;
    }
    /// Cold-tier occupancy: bytes of cached blocks currently demoted
    /// to far-memory DRAM.
    std::uint64_t dramUsedBytes() const { return dram_used_bytes_; }
    std::uint64_t dramPeakBytes() const { return dram_peak_bytes_; }
    /// Blocks / bytes migrated HBM -> DRAM so far.
    std::size_t demotedBlocks() const { return demoted_blocks_; }
    std::uint64_t demotedBytes() const { return demoted_bytes_; }
    /// Blocks / bytes migrated DRAM -> HBM (prefix re-reference) so far.
    std::size_t promotedBlocks() const { return promoted_blocks_; }
    std::uint64_t promotedBytes() const { return promoted_bytes_; }
    /// Refcounts of @p id's shared prefix blocks in chain order (empty
    /// when the reservation is fully private): test hook for the
    /// sharing and refcount-underflow properties.
    std::vector<std::uint32_t> sharedBlockRefs(std::size_t id) const;

  private:
    struct Block
    {
        std::uint64_t bytes = 0;   ///< Byte size (model-dependent).
        std::uint32_t refs = 0;    ///< Requests holding this block.
        bool cached = false;       ///< Registered in the prefix index.
        std::uint64_t hash = 0;    ///< Chain hash (when cached).
        std::vector<std::uint64_t> tokens; ///< Content (when cached),
                                           ///< for collision detection.
        std::uint64_t cold_tick = 0; ///< LRU stamp while refs == 0.
        bool in_dram = false; ///< Demoted to the far-memory cold tier
                              ///< (implies cached && refs == 0).
    };

    struct Reservation
    {
        std::size_t tokens = 0;       ///< Logical token count.
        std::uint64_t block_bytes = 0; ///< Bytes of one block here.
        std::vector<std::uint32_t> prefix_blocks; ///< Shared-capable
                                                  ///< prompt chain.
        std::size_t private_blocks = 0; ///< Anonymous blocks (prompt
                                        ///< tail + decode growth).
    };

    std::uint64_t blockBytes(const ModelSpec& model) const;
    /** ceil(tokens / block_tokens), overflow-safe (ceilDiv's num+den-1
     *  wraps for tokens near UINT64_MAX). */
    std::uint64_t blocksFor(std::size_t tokens) const;
    std::uint64_t chainHash(std::uint64_t prev, const ModelSpec& model,
                            const std::uint64_t* tokens,
                            std::size_t n) const;
    /** True when @p need new bytes fit after reclaiming (demoting or
     *  evicting) cold blocks (does not reclaim). */
    bool canAllocate(std::uint64_t need) const;
    /** Reclaim cold cached HBM blocks LRU-first until @p need new
     *  bytes fit: demote to the DRAM tier when one is configured and
     *  the block fits it, evict otherwise. @pre canAllocate(need). */
    void makeRoom(std::uint64_t need);
    /** Move cold HBM block @p id (already off the cold list) to the
     *  DRAM tier, true-evicting DRAM LRU blocks until it fits.
     *  @pre blocks_[id].bytes <= cfg_.dram_capacity_bytes. */
    void demoteToDram(std::uint32_t id);
    /** Drop the LRU DRAM-resident block from the cache entirely. */
    void evictDramLru();
    std::uint32_t newBlock(std::uint64_t bytes);
    void derefBlock(std::uint32_t id);
    void freeBlock(std::uint32_t id);
    void touchCharge(std::uint64_t bytes);

    KvPoolConfig cfg_;
    std::vector<Block> blocks_;        ///< Block table.
    std::vector<std::uint32_t> free_blocks_; ///< Reusable table slots.
    std::map<std::size_t, Reservation> held_; ///< id -> reservation.
    std::unordered_map<std::uint64_t, std::uint32_t>
        prefix_index_;                 ///< chain hash -> block id.
    std::map<std::uint64_t, std::uint32_t>
        cold_blocks_;                  ///< LRU tick -> cold cached block
                                       ///< (HBM-resident).
    std::map<std::uint64_t, std::uint32_t>
        dram_lru_;                     ///< LRU tick -> DRAM-resident
                                       ///< block. Blocks keep their
                                       ///< cold_tick across demotion,
                                       ///< so the eviction order stays
                                       ///< the global release order.
    std::uint64_t used_bytes_ = 0;
    std::uint64_t peak_bytes_ = 0;
    std::uint64_t cold_bytes_ = 0;
    std::uint64_t dram_used_bytes_ = 0;
    std::uint64_t dram_peak_bytes_ = 0;
    std::uint64_t tick_ = 0;           ///< Monotonic LRU clock.
    std::size_t cow_copied_blocks_ = 0;
    std::size_t evicted_blocks_ = 0;
    std::size_t demoted_blocks_ = 0;
    std::size_t promoted_blocks_ = 0;
    std::uint64_t demoted_bytes_ = 0;
    std::uint64_t promoted_bytes_ = 0;
};

} // namespace spatten

#endif // SPATTEN_SERVE_KV_POOL_HPP
