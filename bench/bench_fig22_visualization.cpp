/// Regenerates Fig. 22: cascade token pruning visualized on trained
/// models — the surviving words are the semantically meaningful ones,
/// making the pruning interpretable (unlike A3/MNNFast).
/// (examples/sentiment_pruning gives the interactive version.)
#include <cstdio>

#include "bench_util.hpp"
#include "nn/trainer.hpp"
#include "workload/synthetic_tasks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 22",
           "Interpretable cascade token pruning on a trained classifier");

    KeywordTaskConfig tc;
    tc.seq_len = 16;
    KeywordTask task(tc);
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 3;
    mc.ffn_dim = 64;
    mc.max_len = tc.seq_len;
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);
    std::printf("training sentiment-style classifier...\n");
    trainClassifier(model, task.sample(300), 6);

    PruningPolicy policy = PruningPolicy::disabled();
    policy.token_pruning = true;
    policy.token_avg_ratio = 0.35;

    // Quantify interpretability: across many sentences, what fraction of
    // keyword tokens vs filler tokens survive pruning?
    const auto test = task.sample(200);
    double kw_total = 0, kw_kept = 0, fil_total = 0, fil_kept = 0;
    std::size_t correct = 0;
    for (const auto& ex : test) {
        PrunedRunStats st;
        correct += model.predictClassPruned(ex.ids, policy, &st) ==
                   ex.label;
        std::vector<bool> alive(ex.ids.size(), false);
        for (std::size_t pos : st.surviving_tokens)
            alive[pos] = true;
        for (std::size_t pos = 0; pos < ex.ids.size(); ++pos) {
            if (task.isKeyword(ex.ids[pos])) {
                kw_total += 1;
                kw_kept += alive[pos];
            } else {
                fil_total += 1;
                fil_kept += alive[pos];
            }
        }
    }
    std::printf("\n%28s %12s\n", "token class", "survival");
    rule();
    std::printf("%28s %11.1f%%\n", "keywords (sentiment cues)",
                100.0 * kw_kept / kw_total);
    std::printf("%28s %11.1f%%\n", "fillers (function words)",
                100.0 * fil_kept / fil_total);
    std::printf("%28s %11.1f%%\n", "pruned accuracy",
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(test.size()));
    rule();
    std::printf("Paper Fig. 22: surviving tokens are exactly the "
                "sentiment cues ('remember', 'admire', 'resolve "
                "confusion'); prepositions and articles are pruned. "
                "Keywords must survive at a far higher rate than "
                "fillers for the pruning to be interpretable.\n");
    return 0;
}
