#!/usr/bin/env python3
"""CI perf floor for the simulator's host throughput.

Reads the decode-session record out of BENCH_sim.json (written by
bench_sim) and compares sim_tokens_per_cpu_s against the checked-in
floors in bench/perf_floor.json. Warn-then-fail: dipping below
warn_floor emits a GitHub warning annotation (triage signal); dipping
below hard_floor — or losing the recorded speedup over the live
pre-optimization baseline — fails the job.

Usage: check_perf_floor.py <BENCH_sim.json> <perf_floor.json>
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)
    with open(sys.argv[2]) as f:
        floor = json.load(f)

    scenario = floor["scenario"]
    metric = floor["metric"]
    rec = next(
        (r for r in bench["records"] if r["scenario"] == scenario), None
    )
    if rec is None:
        print(f"::error::BENCH_sim.json has no '{scenario}' record")
        return 1

    value = rec[metric]
    speedup = rec.get("speedup_vs_baseline", 0.0)
    requests = rec.get("requests", 0)
    print(
        f"{scenario}: {metric}={value:.0f} "
        f"(warn<{floor['warn_floor']}, fail<{floor['hard_floor']}), "
        f"speedup_vs_baseline={speedup:.1f}x "
        f"(min {floor['min_speedup_vs_baseline']}), "
        f"requests={requests:.0f}"
    )

    ok = True
    if requests <= 0:
        print(f"::error::'{scenario}' served zero requests")
        ok = False
    if value < floor["hard_floor"]:
        print(
            f"::error::{metric}={value:.0f} is below the hard floor "
            f"{floor['hard_floor']} — simulator perf regression"
        )
        ok = False
    elif value < floor["warn_floor"]:
        print(
            f"::warning::{metric}={value:.0f} dipped below the warn "
            f"floor {floor['warn_floor']} — investigate before it hits "
            f"the hard floor"
        )
    if speedup < floor["min_speedup_vs_baseline"]:
        print(
            f"::error::speedup_vs_baseline={speedup:.1f}x lost the "
            f"{floor['min_speedup_vs_baseline']}x bar over the live "
            f"pre-optimization path"
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
