/// Continuous-batching serving bench: a 64-request Poisson trace served
/// on pools of 1, 2, and 4 simulated accelerators. Reports TTFT / ITL
/// percentiles, goodput under the SLO, and per-accelerator utilization,
/// and verifies the determinism contract on the spot: per-request
/// results are bit-identical across host thread counts {1, 4}, and
/// per-request *service* results (cycles, energy, KV trajectory) are
/// bit-identical across shard counts.
#include <cstdio>

#include "bench_util.hpp"
#include "serve/continuous_batch_scheduler.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Continuous-batching serving",
           "64-request Poisson trace on 1/2/4 accelerators, "
           "iteration-level scheduling with cascade-pruned decode KV");

    ArrivalTraceConfig tc;
    tc.num_requests = 64;
    tc.mean_interarrival_s = 0.5e-3;
    tc.seed = 0x5eed;
    const auto trace = generatePoissonTrace(tc);

    std::printf("%zu requests, mean interarrival %.2f ms, prompts "
                "%zu-%zu, outputs %zu-%zu\n\n",
                trace.size(), tc.mean_interarrival_s * 1e3, tc.min_prompt,
                tc.max_prompt, tc.min_output, tc.max_output);
    std::printf("%-7s %10s %10s %10s %10s %9s %9s %9s\n", "accels",
                "ttft p50", "ttft p99", "itl p50", "itl p99", "goodput",
                "util", "makespan");
    std::printf("%-7s %10s %10s %10s %10s %9s %9s %9s\n", "", "(ms)",
                "(ms)", "(us)", "(us)", "(req/s)", "(mean)", "(ms)");
    rule();

    std::vector<BenchRecord> records;
    ServeReport single_accel;
    for (const std::size_t accels : {1u, 2u, 4u}) {
        ContinuousBatchConfig sc;
        sc.num_accelerators = accels;
        sc.max_active = 8;
        sc.slo_ttft_s = 25e-3;
        sc.slo_itl_s = 2e-3;

        // Bit-identity across host thread counts: the full report —
        // every timestamp and per-request result — must match.
        sc.num_threads = 1;
        const ServeReport r1 =
            ContinuousBatchScheduler(SpAttenConfig{}, sc).run(trace);
        sc.num_threads = 4;
        const ServeReport r4 =
            ContinuousBatchScheduler(SpAttenConfig{}, sc).run(trace);
        for (std::size_t i = 0; i < trace.size(); ++i) {
            const ServedRequest &a = r1.requests[i], &b = r4.requests[i];
            if (a.sim.cycles != b.sim.cycles ||
                a.sim.seconds != b.sim.seconds ||
                a.finish_s != b.finish_s ||
                a.first_token_s != b.first_token_s ||
                a.token_times_s != b.token_times_s ||
                a.kv_trace != b.kv_trace) {
                std::printf("DETERMINISM VIOLATION (threads) at request "
                            "%zu, %zu accels\n",
                            i, accels);
                return 1;
            }
        }
        // Service results are placement-independent: bit-identical
        // across shard counts (queueing metrics legitimately differ).
        if (accels == 1) {
            single_accel = r1;
        } else {
            for (std::size_t i = 0; i < trace.size(); ++i) {
                const ServedRequest& a = single_accel.requests[i];
                const ServedRequest& b = r1.requests[i];
                if (a.sim.cycles != b.sim.cycles ||
                    a.sim.dram_bytes != b.sim.dram_bytes ||
                    a.service_seconds != b.service_seconds ||
                    a.kv_trace != b.kv_trace) {
                    std::printf("DETERMINISM VIOLATION (shards) at "
                                "request %zu, %zu accels\n",
                                i, accels);
                    return 1;
                }
            }
        }

        double util = 0;
        for (double u : r1.accel_util)
            util += u;
        util /= static_cast<double>(accels);
        std::printf("%-7zu %10.2f %10.2f %10.1f %10.1f %9.0f %9.2f "
                    "%9.2f\n",
                    accels, r1.ttft_p50_s * 1e3, r1.ttft_p99_s * 1e3,
                    r1.itl_p50_s * 1e6, r1.itl_p99_s * 1e6,
                    r1.goodput_rps, util, r1.makespan_s * 1e3);
        records.push_back({"poisson64-accel" + std::to_string(accels),
                           r1.total_cycles, r1.makespan_s,
                           r1.makespan_s > 0 ? r1.total_flops /
                                                   r1.makespan_s * 1e-12
                                             : 0.0,
                           r1.dram_reduction});
    }
    rule();
    std::printf("All thread and shard counts produced bit-identical "
                "per-request results.\n");
    writeBenchJson("serving", records);
    return 0;
}
