/**
 * @file
 * HBM2 memory model (the paper uses Ramulator with HBM2 settings;
 * Table I: 16 x 128-bit channels @ 2 GHz, 2 x 64-bit pseudo-channels per
 * channel, 32 GB/s per channel = 512 GB/s aggregate).
 *
 * The model is built from scratch: requests are interleaved across
 * channels at a fixed granularity; each channel has banks with a row
 * buffer, FR-FCFS-lite timing (row hit = CAS only, miss = PRE+ACT+CAS),
 * and a data bus that moves a fixed number of bytes per DRAM cycle.
 * Energy is counted per activation and per bit moved, using the
 * fine-grained-DRAM numbers the paper cites (O'Connor et al., MICRO'17).
 */
#ifndef SPATTEN_HBM_HBM_HPP
#define SPATTEN_HBM_HBM_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/clock.hpp"
#include "sim/stats.hpp"

namespace spatten {

/** Static configuration of the HBM stack. */
struct HbmConfig
{
    int channels = 16;            ///< 128-bit channels.
    double freq_ghz = 2.0;        ///< Effective data-rate clock (2 GHz).
    int bytes_per_cycle = 16;     ///< 128-bit bus -> 16 B per data cycle.
    int banks_per_channel = 16;
    std::uint64_t row_bytes = 1024;        ///< Row-buffer size per bank.
    std::uint64_t interleave_bytes = 256;  ///< Channel interleave stride.

    // Core timing in DRAM cycles (~7 ns each at 2 GHz => 14 cycles).
    Cycles t_rcd = 28; ///< ACT -> CAS.
    Cycles t_rp = 28;  ///< PRE -> ACT.
    Cycles t_cl = 28;  ///< CAS -> first data.

    /// Sustained fraction of peak bandwidth (refresh, turnaround, bank
    /// conflicts). Ramulator-style models land at ~0.7 for streaming
    /// gathers of this kind.
    double bus_efficiency = 0.72;

    /// Total stack capacity in GiB (HBM2: 8 GiB across the 16 channels).
    /// The serving layer's KV pool derives its byte budget from this.
    double capacity_gb = 8.0;

    /**
     * Total stack capacity in bytes. The whole-GiB part converts by
     * exact integer shift and the sub-GiB remainder rounds to the
     * nearest byte — the previous single double-multiply-and-cast
     * truncated fractional capacities toward zero (0.7 GiB lost its
     * last byte) and had no defined behavior once the product left
     * uint64 range. Supports capacities below 2^34 whole GiB (16 EiB).
     */
    std::uint64_t capacityBytes() const
    {
        const auto whole_gb = static_cast<std::uint64_t>(capacity_gb);
        const double frac_gb =
            capacity_gb - static_cast<double>(whole_gb);
        return (whole_gb << 30) +
               static_cast<std::uint64_t>(
                   frac_gb * static_cast<double>(1ull << 30) + 0.5);
    }

    // Energy constants (pJ), after O'Connor et al. fine-grained DRAM.
    double act_energy_pj = 909.0;    ///< Per row activation.
    double bit_energy_pj = 3.9;      ///< Per bit moved (array+IO).

    /** Aggregate peak bandwidth in GB/s. */
    double peakBandwidthGBs() const
    {
        return channels * bytes_per_cycle * freq_ghz;
    }
};

/**
 * Far-memory (commodity DRAM behind the HBM stack) parameters for the
 * tiered KV pool, after Hybrid2 (HPCA'20): the HBM stack is the hot
 * tier, and cold KV blocks migrate to a larger, slower DRAM pool over a
 * dedicated link instead of being dropped. The struct models only what
 * the serving layer needs — a capacity, and a latency + bandwidth cost
 * for each migration burst; per-bit migration energy lives with the
 * other energy constants (EnergyConfig::far_bit_energy_pj).
 */
struct FarMemoryConfig
{
    /// Cold-tier capacity in GiB. 0 (the default) disables tiering
    /// entirely: the KV pool keeps its single-budget PR-5 semantics
    /// bit for bit.
    double capacity_gb = 0.0;
    /// Sustained migration-link bandwidth in GB/s (DDR4-class channel
    /// pair; far below the HBM stack's 512 GB/s by construction).
    double bandwidth_gbs = 64.0;
    /// Fixed per-burst access latency in microseconds (queue + far
    /// DRAM access + link turnaround).
    double latency_us = 0.5;

    bool enabled() const { return capacity_gb > 0.0; }

    /** Cold-tier capacity in bytes; same exact-shift + rounded-fraction
     *  conversion as HbmConfig::capacityBytes(). */
    std::uint64_t capacityBytes() const
    {
        const auto whole_gb = static_cast<std::uint64_t>(capacity_gb);
        const double frac_gb =
            capacity_gb - static_cast<double>(whole_gb);
        return (whole_gb << 30) +
               static_cast<std::uint64_t>(
                   frac_gb * static_cast<double>(1ull << 30) + 0.5);
    }

    /** Seconds one migration burst of @p bytes occupies the link:
     *  latency + bytes / bandwidth. 0 bytes cost nothing (no burst). */
    double transferSeconds(std::uint64_t bytes) const
    {
        if (bytes == 0)
            return 0.0;
        return latency_us * 1e-6 +
               static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
    }
};

/** A single read or write request. */
struct HbmRequest
{
    std::uint64_t addr = 0;
    std::uint64_t bytes = 0;
    bool write = false;
};

/**
 * The HBM stack model. Time is kept in DRAM cycles of the config's
 * frequency; the accelerator converts with its own ClockDomain.
 */
class HbmModel
{
  public:
    explicit HbmModel(HbmConfig cfg = HbmConfig{});

    const HbmConfig& config() const { return cfg_; }

    /**
     * Issue one request at DRAM-cycle @p ready.
     * The request is split across channels by the interleave mapping;
     * completion is when the last channel finishes.
     * @return completion cycle.
     */
    Cycles access(const HbmRequest& req, Cycles ready);

    /**
     * Select the serving implementation. The default fast path serves
     * whole per-channel streams with shift/mask address mapping and a
     * row-segment closed form; the reference path is the original
     * per-chunk loop. Both produce bit-identical completion cycles,
     * byte/activation counters, and bank/bus state (pinned by
     * test_hbm_fast_path); the reference path exists as the oracle for
     * that property test and for A/B perf measurements.
     */
    void setReferenceServing(bool on) { reference_serving_ = on; }
    bool referenceServing() const { return reference_serving_; }

    /**
     * Issue a batch of independent requests (e.g. the gather of surviving
     * K rows) that may proceed in parallel across channels.
     * @return completion cycle of the last request.
     */
    Cycles accessBatch(const std::vector<HbmRequest>& reqs, Cycles ready);

    /**
     * Idealized streaming time: cycles to move @p bytes at peak bandwidth
     * (used for roofline checks, not for simulation).
     */
    Cycles streamCycles(std::uint64_t bytes) const;

    /** Total energy consumed so far, in pJ. */
    double energyPj() const;

    /** Total bytes moved (reads + writes). */
    std::uint64_t totalBytes() const { return bytes_read_ + bytes_written_; }
    std::uint64_t bytesRead() const { return bytes_read_; }
    std::uint64_t bytesWritten() const { return bytes_written_; }
    std::uint64_t rowActivations() const { return activations_; }
    std::uint64_t requestsIssued() const { return requests_; }

    /** Cycle at which every channel is drained. */
    Cycles drainCycle() const;

    /** Export counters into a StatSet under the "hbm." prefix. */
    void exportStats(StatSet& stats) const;

    void reset();

    /**
     * Snapshot of the timing-relevant channel/bank state, relative to a
     * caller-chosen base cycle with base >= every busy_until (true
     * whenever base is the owner's DRAM-clock cursor: the cursor is the
     * max over completion cycles, which dominate bus-busy cycles). The
     * model's timing math is translation-invariant in absolute time, and
     * any channel whose bus frees at or before base behaves identically
     * no matter how long it has been idle (every subsequent request's
     * ready is >= base, so max(ready, busy_until) = ready) — its
     * relative busy is therefore clamped to 0, making the snapshot a
     * canonical representative of the behavioral equivalence class.
     * Two moments with equal snapshots serve any request sequence with
     * identical relative results — the property the decode-step replay
     * memo (AttentionGraph) is built on: capture before a recorded pass,
     * compare before a candidate replay, restore after.
     */
    struct TimingState
    {
        /// max(busy_until - base, 0): 0 for idle-at-base channels,
        /// positive for channels the in-flight pass touched.
        std::vector<std::int64_t> rel_busy;
        std::vector<std::int64_t> open_rows; ///< Per (channel, bank).
    };

    TimingState captureTimingState(Cycles base) const;
    bool timingStateEquals(const TimingState& s, Cycles base) const;
    /** Install @p s shifted to @p base: open rows always; bus cursors
     *  only for channels the recorded pass touched (rel_busy > 0) —
     *  idle channels keep their exact historical busy_until, matching
     *  live execution bit for bit. */
    void restoreTimingState(const TimingState& s, Cycles base);
    /** Advance traffic counters by a replayed pass's deltas. */
    void addReplayedTraffic(std::uint64_t bytes_read,
                            std::uint64_t bytes_written,
                            std::uint64_t activations,
                            std::uint64_t requests);

  private:
    struct Bank
    {
        std::int64_t open_row = -1;
    };
    struct Channel
    {
        Cycles busy_until = 0;
        std::vector<Bank> banks;
    };

    /** Map an address to (channel, bank, row). */
    void mapAddress(std::uint64_t addr, int& channel, int& bank,
                    std::int64_t& row) const;

    /** Serve @p bytes at @p addr on its home channel; returns done cycle. */
    Cycles serveChunk(std::uint64_t addr, std::uint64_t bytes, bool write,
                      Cycles ready);

    /** Reference serving: the original per-chunk loop. */
    Cycles accessReference(const HbmRequest& req, Cycles ready);

    /** Fast serving: shift/mask chunk loop + row-segment closed form. */
    Cycles accessFast(const HbmRequest& req, Cycles ready);

    /** Burst cycles for a (possibly partial) chunk of @p bytes: table
     *  lookup (chunks never exceed the interleave granule; the table is
     *  filled with the reference ceil expression at construction). */
    Cycles burstCycles(std::uint64_t bytes) const
    {
        return burst_table_[bytes];
    }

    /** The reference burst expression (used to fill the table). */
    Cycles burstCyclesRef(std::uint64_t bytes) const
    {
        return std::max<Cycles>(
            1, static_cast<Cycles>(std::ceil(
                   static_cast<double>(bytes) / eff_bytes_per_cycle_)));
    }

    HbmConfig cfg_;
    std::vector<Channel> channels_;
    std::uint64_t bytes_read_ = 0;
    std::uint64_t bytes_written_ = 0;
    std::uint64_t activations_ = 0;
    std::uint64_t requests_ = 0;
    bool reference_serving_ = false;

    // Derived constants for the fast path (interleave/row sizes are
    // asserted powers of two at construction).
    int ilv_shift_ = 0;            ///< log2(interleave_bytes).
    std::uint64_t ilv_mask_ = 0;   ///< interleave_bytes - 1.
    int row_shift_ = 0;            ///< log2(row_bytes).
    double eff_bytes_per_cycle_ = 0;
    Cycles burst_full_ = 0;        ///< burstCycles(interleave_bytes).
    std::vector<Cycles> burst_table_; ///< [0..interleave_bytes] cycles.
    // Shift/mask shortcuts when the channel/bank counts happen to be
    // powers of two (they are in the default HBM2 geometry): a 64-bit
    // divide per chunk is the dominant cost of the small-stream loop.
    bool ch_pow2_ = false;
    int ch_shift_ = 0;
    std::uint64_t ch_mask_ = 0;
    bool bank_pow2_ = false;
    std::uint64_t bank_mask_ = 0;

    std::uint64_t chanOf(std::uint64_t block) const
    {
        return ch_pow2_ ? (block & ch_mask_)
                        : (block % static_cast<std::uint64_t>(
                                       cfg_.channels));
    }
    std::uint64_t blockInChannel(std::uint64_t block) const
    {
        return ch_pow2_ ? (block >> ch_shift_)
                        : (block / static_cast<std::uint64_t>(
                                       cfg_.channels));
    }
    std::uint64_t bankOf(std::uint64_t row) const
    {
        return bank_pow2_ ? (row & bank_mask_)
                          : (row % static_cast<std::uint64_t>(
                                       cfg_.banks_per_channel));
    }
};

} // namespace spatten

#endif // SPATTEN_HBM_HBM_HPP
