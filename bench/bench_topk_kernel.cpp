/// google-benchmark kernels for §IV-B/§IV-C: the quick-select top-k
/// engine vs the Batcher full-sort baseline (cycle model + host-side
/// functional throughput), and the zero eliminator.
#include <benchmark/benchmark.h>

#include "accel/topk_engine.hpp"
#include "accel/zero_eliminator.hpp"
#include "common/prng.hpp"

namespace {

std::vector<float>
randomValues(std::size_t n, std::uint64_t seed)
{
    spatten::Prng prng(seed);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(prng.uniform());
    return v;
}

void
BM_TopkEngine(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto v = randomValues(n, 1);
    spatten::TopkEngine engine;
    std::uint64_t cycles = 0, runs = 0;
    for (auto _ : state) {
        auto res = engine.run(v, n / 2);
        benchmark::DoNotOptimize(res.indices.data());
        cycles += res.cycles;
        ++runs;
    }
    state.counters["model_cycles"] =
        static_cast<double>(cycles) / static_cast<double>(runs);
}
BENCHMARK(BM_TopkEngine)->Arg(128)->Arg(1024)->Arg(4096);

void
BM_BatcherSort(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto v = randomValues(n, 2);
    std::uint64_t cycles = 0, runs = 0;
    for (auto _ : state) {
        auto res = spatten::batcherSortDescending(v, 16);
        benchmark::DoNotOptimize(res.sorted_desc.data());
        cycles += res.cycles;
        ++runs;
    }
    state.counters["model_cycles"] =
        static_cast<double>(cycles) / static_cast<double>(runs);
}
BENCHMARK(BM_BatcherSort)->Arg(128)->Arg(1024)->Arg(4096);

void
BM_ZeroEliminator(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    auto v = randomValues(n, 3);
    spatten::Prng prng(4);
    for (auto& x : v)
        if (prng.chance(0.5))
            x = 0.0f;
    spatten::ZeroEliminator ze;
    for (auto _ : state) {
        auto res = ze.run(v);
        benchmark::DoNotOptimize(res.compacted.data());
    }
}
BENCHMARK(BM_ZeroEliminator)->Arg(128)->Arg(1024);

} // namespace

BENCHMARK_MAIN();
