/// Batched decode-step evaluation: SpAttenAccelerator::stepDecodeBatch
/// advances every lane layer-major through one stage-graph traversal;
/// sessions share no state, so every observable must be bit-identical
/// to the serial decodeStep() loop — directly at the backend level, and
/// end-to-end through the scheduler (batched_decode on vs off) across
/// thread counts, shard counts, chunked prefill, and prefix caching.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "accel/decode_session.hpp"
#include "accel/spatten_accelerator.hpp"
#include "serve/continuous_batch_scheduler.hpp"

namespace spatten {
namespace {

ModelSpec
tinyModel()
{
    return {"tiny", 4, 4, 64, 4};
}

WorkloadSpec
laneWorkload(std::size_t prompt, std::size_t gen, const char* name)
{
    WorkloadSpec w;
    w.name = name;
    w.model = tinyModel();
    w.summarize_len = prompt;
    w.generate_len = gen;
    return w;
}

// ---------------------------------------------------------------------
// Backend level: stepDecodeBatch == serial decodeStep loop
// ---------------------------------------------------------------------

TEST(BatchedDecode, LayerMajorBatchMatchesSerialBitForBit)
{
    const SpAttenAccelerator accel;
    const std::vector<WorkloadSpec> lanes = {
        laneWorkload(96, 8, "lane-a"),
        laneWorkload(128, 8, "lane-b"),
        laneWorkload(64, 8, "lane-c"),
    };

    // Twin fleets: identical sessions, one stepped batched, one serial.
    std::vector<std::unique_ptr<BackendSession>> batched, serial;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        batched.push_back(
            accel.makeSession(lanes[i], PruningPolicy{}, 40 + i));
        serial.push_back(
            accel.makeSession(lanes[i], PruningPolicy{}, 40 + i));
        batched.back()->prefill();
        serial.back()->prefill();
    }

    std::vector<BackendSession*> lane_ptrs;
    for (auto& s : batched)
        lane_ptrs.push_back(s.get());

    std::vector<double> batch_seconds;
    for (std::size_t step = 0; step < 8; ++step) {
        accel.stepDecodeBatch(lane_ptrs, batch_seconds);
        ASSERT_EQ(batch_seconds.size(), lanes.size());
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            const double serial_s = serial[i]->decodeStep();
            EXPECT_EQ(batch_seconds[i], serial_s)
                << "lane " << i << " step " << step;
            EXPECT_EQ(batched[i]->kvLength(), serial[i]->kvLength());
        }
    }

    for (std::size_t i = 0; i < lanes.size(); ++i) {
        EXPECT_TRUE(batched[i]->done());
        EXPECT_EQ(batched[i]->kvTrace(), serial[i]->kvTrace());
        const RunResult a = batched[i]->finalize();
        const RunResult b = serial[i]->finalize();
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.seconds, b.seconds);
        EXPECT_EQ(a.dram_bytes, b.dram_bytes);
        EXPECT_EQ(a.attention_flops, b.attention_flops);
        EXPECT_EQ(a.energy.totalJ(), b.energy.totalJ());
        ASSERT_EQ(a.stats.all().size(), b.stats.all().size());
        auto ita = a.stats.all().begin();
        for (auto itb = b.stats.all().begin();
             itb != b.stats.all().end(); ++ita, ++itb) {
            EXPECT_EQ(ita->first, itb->first);
            EXPECT_EQ(ita->second, itb->second) << "stat " << ita->first;
        }
    }
}

TEST(BatchedDecode, MixedMemoAndLiveLanes)
{
    // A fresh lane joins mid-stream: its first steps record while the
    // veterans replay from the memo — owed-layer counts differ across
    // lanes within one batched call (0 for replayed, num_layers for
    // live) and the interleave must still match serial exactly.
    const SpAttenAccelerator accel;
    const WorkloadSpec w = laneWorkload(96, 12, "veteran");
    auto vet_b = accel.makeSession(w, PruningPolicy{}, 7);
    auto vet_s = accel.makeSession(w, PruningPolicy{}, 7);
    vet_b->prefill();
    vet_s->prefill();
    // Warm the veteran into memo steady state.
    std::vector<BackendSession*> solo = {vet_b.get()};
    std::vector<double> secs;
    for (int i = 0; i < 6; ++i) {
        accel.stepDecodeBatch(solo, secs);
        EXPECT_EQ(secs[0], vet_s->decodeStep());
    }

    const WorkloadSpec w2 = laneWorkload(64, 6, "rookie");
    auto rook_b = accel.makeSession(w2, PruningPolicy{}, 9);
    auto rook_s = accel.makeSession(w2, PruningPolicy{}, 9);
    rook_b->prefill();
    rook_s->prefill();

    std::vector<BackendSession*> both = {vet_b.get(), rook_b.get()};
    for (int i = 0; i < 6; ++i) {
        accel.stepDecodeBatch(both, secs);
        EXPECT_EQ(secs[0], vet_s->decodeStep()) << "step " << i;
        EXPECT_EQ(secs[1], rook_s->decodeStep()) << "step " << i;
    }
    EXPECT_EQ(vet_b->kvTrace(), vet_s->kvTrace());
    EXPECT_EQ(rook_b->kvTrace(), rook_s->kvTrace());
}

// ---------------------------------------------------------------------
// Scheduler level: batched_decode on == off, whole-report
// ---------------------------------------------------------------------

std::vector<TracedRequest>
denseTrace(std::size_t n)
{
    ArrivalTraceConfig tc;
    tc.num_requests = n;
    tc.mean_interarrival_s = 0.05e-3;
    tc.seed = 0xbadc0de;
    tc.model = tinyModel();
    tc.min_prompt = 48;
    tc.max_prompt = 160;
    tc.min_output = 4;
    tc.max_output = 16;
    return generatePoissonTrace(tc);
}

void
expectSameReport(const ServeReport& a, const ServeReport& b)
{
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.accel_busy_s, b.accel_busy_s);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].first_token_s,
                  b.requests[i].first_token_s);
        EXPECT_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
        EXPECT_EQ(a.requests[i].token_times_s,
                  b.requests[i].token_times_s);
        EXPECT_EQ(a.requests[i].service_seconds,
                  b.requests[i].service_seconds);
        EXPECT_EQ(a.requests[i].kv_trace, b.requests[i].kv_trace);
        EXPECT_EQ(a.requests[i].sim.cycles, b.requests[i].sim.cycles);
        EXPECT_EQ(a.requests[i].sim.energy.totalJ(),
                  b.requests[i].sim.energy.totalJ());
    }
}

ServeReport
serve(const std::vector<TracedRequest>& trace, ContinuousBatchConfig sc)
{
    return ContinuousBatchScheduler(SpAttenConfig{}, sc).run(trace);
}

TEST(BatchedDecode, SchedulerBatchedMatchesPerJobAcrossThreadsAndShards)
{
    const auto trace = denseTrace(20);
    for (const std::size_t accels : {std::size_t{1}, std::size_t{2}}) {
        ContinuousBatchConfig off;
        off.num_accelerators = accels;
        off.max_active = 6;
        off.num_threads = 1;
        off.batched_decode = false;
        const ServeReport baseline = serve(trace, off);

        for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
            ContinuousBatchConfig on = off;
            on.batched_decode = true;
            on.num_threads = threads;
            expectSameReport(baseline, serve(trace, on));
        }
    }
}

TEST(BatchedDecode, SchedulerBatchedMatchesWithChunkedPrefill)
{
    // Chunked prefill forces mixed prefill+decode iterations (which
    // must fall back to the per-job pool) interleaved with all-decode
    // iterations (which batch); both kinds must agree with batching
    // disabled.
    const auto trace = denseTrace(16);
    ContinuousBatchConfig off;
    off.max_active = 6;
    off.num_threads = 1;
    off.prefill_chunk_tokens = 32;
    off.iteration_token_budget = 48;
    off.batched_decode = false;
    ContinuousBatchConfig on = off;
    on.batched_decode = true;
    expectSameReport(serve(trace, off), serve(trace, on));
}

TEST(BatchedDecode, SchedulerBatchedMatchesWithPrefixCaching)
{
    SharedPrefixTraceConfig pc;
    pc.base = ArrivalTraceConfig{};
    pc.base.num_requests = 14;
    pc.base.mean_interarrival_s = 0.1e-3;
    pc.base.model = tinyModel();
    pc.base.min_output = 2;
    pc.base.max_output = 8;
    pc.system_prompt_tokens = 64;
    pc.max_prompt_tokens = 320;
    const auto trace = generateSharedPrefixTrace(pc);

    ContinuousBatchConfig off;
    off.max_active = 6;
    off.num_threads = 1;
    off.enable_prefix_caching = true;
    off.batched_decode = false;
    ContinuousBatchConfig on = off;
    on.batched_decode = true;
    expectSameReport(serve(trace, off), serve(trace, on));
}

} // namespace
} // namespace spatten
